// softcell::cluster -- the replicated controller fleet (DESIGN.md section
// 14): rendezvous partition ownership, logical-clock leader leases,
// cross-controller handoff, crash rebuild from agent truth, and the chaos
// harness's sixth invariant (exactly one owner per UE) including the
// kLeaseNotRevoked sabotage that must be provably caught.
#include "cluster/fleet.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <iostream>
#include <optional>
#include <thread>
#include <vector>

#include "chaos/harness.hpp"
#include "sim/network.hpp"
#include "telemetry/registry.hpp"

namespace softcell::cluster {
namespace {

constexpr Ipv4Addr kServer = 0x08080808u;

// The owner the fleet must pick when every replica is eligible: the
// rendezvous argmax, recomputed here from the public hash helpers so the
// tests do not depend on fleet internals.
std::size_t expected_owner(std::uint32_t partition, std::size_t replicas) {
  std::size_t best = 0;
  for (std::size_t r = 1; r < replicas; ++r)
    if (hrw_weight(partition, r) > hrw_weight(partition, best)) best = r;
  return best;
}

TEST(Hashing, PartitionOfBsIsDeterministicAndBounded) {
  for (std::uint32_t bs = 0; bs < 64; ++bs) {
    const auto p = partition_of_bs(bs, 16);
    EXPECT_LT(p, 16u);
    EXPECT_EQ(p, partition_of_bs(bs, 16));
  }
  // The hash actually spreads: 64 base stations must not collapse onto a
  // couple of partitions.
  std::vector<bool> hit(16, false);
  for (std::uint32_t bs = 0; bs < 64; ++bs) hit[partition_of_bs(bs, 16)] = true;
  std::size_t used = 0;
  for (const bool h : hit) used += h;
  EXPECT_GE(used, 12u);
}

TEST(Hashing, RendezvousMovesOnlyTheLostMembersPartitions) {
  // Minimal movement: dropping replica 1 must not move any partition that
  // replica 1 did not own.
  for (std::uint32_t p = 0; p < 64; ++p) {
    const std::size_t with3 = expected_owner(p, 3);
    std::size_t without1 = 0;
    for (const std::size_t r : {std::size_t{0}, std::size_t{2}})
      if (hrw_weight(p, r) > hrw_weight(p, without1)) without1 = r;
    if (with3 != 1) {
      EXPECT_EQ(without1, with3) << "partition " << p;
    }
  }
  // And the weights themselves spread ownership across all three members.
  std::vector<std::size_t> owned(3, 0);
  for (std::uint32_t p = 0; p < 64; ++p) ++owned[expected_owner(p, 3)];
  for (std::size_t r = 0; r < 3; ++r)
    EXPECT_GT(owned[r], 8u) << "replica " << r << " owns almost nothing";
}

TEST(Fleet, RejectsDegenerateOptions) {
  CellularTopology topo({.k = 4, .seed = 1});
  EXPECT_THROW(
      ControllerFleet(topo, make_table1_policy(), FleetOptions{.replicas = 0}),
      std::invalid_argument);
  EXPECT_THROW(ControllerFleet(topo, make_table1_policy(),
                               FleetOptions{.partitions = 0}),
               std::invalid_argument);
  EXPECT_THROW(ControllerFleet(topo, make_table1_policy(),
                               FleetOptions{.lease_ticks = 0}),
               std::invalid_argument);
}

// Direct-fleet fixture: the "agents" are a plain truth map the location
// query replays, so rebuild semantics are observable without the sim.
class FleetTest : public ::testing::Test {
 protected:
  FleetTest()
      : topo_({.k = 4, .seed = 1}),
        fleet_(topo_, make_table1_policy(), {.replicas = 3}) {
    fleet_.set_location_query([this](
        const std::function<void(UeId, UeLocation)>& sink) {
      for (const auto& [ue, loc] : truth_) sink(ue, loc);
    });
  }

  UeId add_ue(std::uint32_t value, std::uint32_t bs) {
    const UeId ue(value);
    SubscriberProfile p;
    p.ue = ue;
    p.plan = BillingPlan::kSilver;
    fleet_.provision_subscriber(ue, p);
    fleet_.attach_ue(ue, bs, LocalUeId(static_cast<std::uint16_t>(value)));
    truth_[ue] = UeLocation{bs, LocalUeId(static_cast<std::uint16_t>(value))};
    ues_.push_back(ue);
    return ue;
  }

  void move_ue(UeId ue, std::uint32_t bs) {
    const LocalUeId local(static_cast<std::uint16_t>(ue.value()));
    fleet_.update_location(ue, bs, local);
    truth_[ue] = UeLocation{bs, local};
  }

  // A base station whose partition's preferred owner differs from `from`'s.
  std::uint32_t bs_owned_elsewhere(std::uint32_t from) {
    const std::size_t avoid = expected_owner(
        partition_of_bs(from, fleet_.partition_count()), 3);
    for (std::uint32_t bs = 0; bs < topo_.num_base_stations(); ++bs) {
      const auto p = partition_of_bs(bs, fleet_.partition_count());
      if (p != partition_of_bs(from, fleet_.partition_count()) &&
          expected_owner(p, 3) != avoid)
        return bs;
    }
    throw std::logic_error("no differently-owned base station found");
  }

  void expect_clean_audit() {
    const auto bad = fleet_.audit_exactly_one_owner(ues_);
    EXPECT_TRUE(bad.empty()) << bad.front();
    const auto diverged = fleet_.audit_engines_converged();
    EXPECT_FALSE(diverged.has_value()) << *diverged;
  }

  CellularTopology topo_;
  ControllerFleet fleet_;
  std::unordered_map<UeId, UeLocation> truth_;
  std::vector<UeId> ues_;
};

TEST_F(FleetTest, AttachAcquiresLeaseAndServesLocation) {
  const UeId ue = add_ue(1, 5);
  const auto owner = fleet_.owner_of_bs(5);
  ASSERT_TRUE(owner.has_value());
  EXPECT_EQ(*owner, expected_owner(partition_of_bs(5, 16), 3));
  EXPECT_GE(fleet_.lease_epoch(partition_of_bs(5, 16)), 1u);
  const auto loc = fleet_.ue_location(ue);
  ASSERT_TRUE(loc.has_value());
  EXPECT_EQ(loc->bs, 5u);
  // Serving the lookup renewed the lease instead of re-acquiring it.
  EXPECT_GT(fleet_.stats().lease_renewals, 0u);
  expect_clean_audit();
}

TEST_F(FleetTest, CrossPartitionHandoffMovesOwnership) {
  const std::uint32_t from = 0;
  const std::uint32_t to = bs_owned_elsewhere(from);
  const UeId ue = add_ue(1, from);
  const auto before = fleet_.owner_of_bs(from);
  ASSERT_TRUE(before.has_value());

  move_ue(ue, to);

  EXPECT_GE(fleet_.stats().cross_handoffs, 1u);
  const auto after = fleet_.owner_of_bs(to);
  ASSERT_TRUE(after.has_value());
  EXPECT_NE(*after, *before);
  // The old owner forgot the UE; the new one serves it.
  EXPECT_FALSE(fleet_.replica(*before).store().location(ue).has_value());
  ASSERT_TRUE(fleet_.replica(*after).store().location(ue).has_value());
  expect_clean_audit();
}

TEST_F(FleetTest, CleanCrashTakesOverAndRebuildsFromAgents) {
  for (std::uint32_t bs = 0; bs < 12; bs += 2) add_ue(bs + 1, bs);
  const auto victim = fleet_.owner_of_bs(0);
  ASSERT_TRUE(victim.has_value());
  const auto takeovers_before = fleet_.stats().takeovers;

  fleet_.kill(*victim);  // clean crash: leases revoked immediately

  // The next operation on a partition the victim owned runs the takeover
  // protocol -- no lease wait (revoked), rebuild from the agent query.
  for (const UeId ue : ues_) {
    const auto loc = fleet_.ue_location(ue);
    ASSERT_TRUE(loc.has_value()) << "lost UE " << ue.value();
    EXPECT_EQ(loc->bs, truth_.at(ue).bs);
  }
  EXPECT_GT(fleet_.stats().takeovers, takeovers_before);
  EXPECT_GT(fleet_.stats().rebuilt_locations, 0u);
  EXPECT_EQ(fleet_.stats().lease_waits, 0u);

  fleet_.settle();
  expect_clean_audit();

  // The restarted member owns nothing until a takeover hands it a partition.
  fleet_.restart(*victim);
  EXPECT_EQ(fleet_.replica(*victim).store().attached_ues(), 0u);
  fleet_.settle();
  expect_clean_audit();
}

TEST_F(FleetTest, ZombieCrashLeavesTwoHoldersForTheAudit) {
  const UeId ue = add_ue(1, 3);
  const auto victim = fleet_.owner_of_bs(3);
  ASSERT_TRUE(victim.has_value());

  // Sabotage path: the kill does NOT revoke the leases, so the dead member
  // keeps its stale location store.
  fleet_.kill(*victim, /*revoke_leases=*/false);

  // A successor can only take over by waiting the lease out (logical-clock
  // jump), and the rebuild re-adds the UE next to the zombie's stale copy.
  const auto loc = fleet_.ue_location(ue);
  ASSERT_TRUE(loc.has_value());
  EXPECT_GT(fleet_.stats().lease_waits, 0u);

  const auto bad = fleet_.audit_exactly_one_owner(ues_);
  ASSERT_FALSE(bad.empty()) << "zombie store went unnoticed";
  EXPECT_NE(bad.front().find("2 replicas"), std::string::npos) << bad.front();

  // Restarting the zombie wipes the stale store; the audit goes green.
  fleet_.restart(*victim);
  fleet_.settle();
  expect_clean_audit();
}

TEST_F(FleetTest, StoreLagFreezesSlowStateUntilFlushed) {
  add_ue(1, 0);
  fleet_.set_store_lag(2, true);
  ASSERT_TRUE(fleet_.is_lagged(2));

  // Slow-state writes while replica 2 lags: provisioning and path installs
  // skip it, so its store version falls behind.
  add_ue(2, 4);
  SubscriberProfile p;
  p.plan = BillingPlan::kSilver;
  const auto* clause = fleet_.replica(0).policy().match(p, AppType::kWeb);
  ASSERT_NE(clause, nullptr);
  fleet_.request_policy_path(0, clause->id);
  EXPECT_LT(fleet_.replica(2).store().version(),
            fleet_.replica(0).store().version());

  const auto replayed_before = fleet_.stats().replayed_ops;
  fleet_.set_store_lag(2, false);
  EXPECT_GT(fleet_.stats().replayed_ops, replayed_before);
  EXPECT_EQ(fleet_.replica(2).store().version(),
            fleet_.replica(0).store().version());
  expect_clean_audit();
}

TEST_F(FleetTest, ForceExpireBumpsEpochOnNextOperation) {
  const UeId ue = add_ue(1, 7);
  const auto p = partition_of_bs(7, fleet_.partition_count());
  const auto epoch = fleet_.lease_epoch(p);
  fleet_.force_expire(p);
  // Reads on the partition must re-acquire: epoch bump, same preferred
  // owner, fast state rebuilt -- and still exactly one holder.
  ASSERT_TRUE(fleet_.ue_location(ue).has_value());
  EXPECT_EQ(fleet_.lease_epoch(p), epoch + 1);
  EXPECT_EQ(fleet_.owner_of_bs(7), expected_owner(p, 3));
  expect_clean_audit();
  EXPECT_THROW(fleet_.force_expire(fleet_.partition_count()),
               std::out_of_range);
}

TEST_F(FleetTest, IsolationMissesWritesAndHealReplaysThem) {
  add_ue(1, 0);
  fleet_.isolate(1);
  ASSERT_TRUE(fleet_.is_isolated(1));
  add_ue(2, 4);  // provision replicated to members 0 and 2 only
  EXPECT_LT(fleet_.replica(1).store().version(),
            fleet_.replica(0).store().version());

  const auto replayed_before = fleet_.stats().replayed_ops;
  fleet_.heal(1);
  EXPECT_GT(fleet_.stats().replayed_ops, replayed_before);
  fleet_.settle();
  expect_clean_audit();
}

TEST_F(FleetTest, SettleReassignsPartitionsOfDeadOwners) {
  add_ue(1, 2);
  const auto victim = fleet_.owner_of_bs(2);
  ASSERT_TRUE(victim.has_value());
  fleet_.kill(*victim);
  // No intermediate operation: settle alone must reassign and rebuild.
  fleet_.settle();
  const auto owner = fleet_.owner_of_bs(2);
  ASSERT_TRUE(owner.has_value());
  EXPECT_NE(*owner, *victim);
  EXPECT_TRUE(fleet_.is_alive(*owner));
  expect_clean_audit();
}

TEST_F(FleetTest, NoUsableReplicaFailsLoudly) {
  add_ue(1, 0);
  fleet_.kill(0);
  fleet_.kill(1);
  fleet_.kill(2);
  SubscriberProfile p;
  p.ue = UeId(9);
  EXPECT_THROW(fleet_.provision_subscriber(UeId(9), p), std::logic_error);
  EXPECT_THROW((void)fleet_.forwarding_replica(), std::logic_error);
  fleet_.restart(0);
  fleet_.settle();
  EXPECT_EQ(fleet_.usable_count(), 1u);
}

TEST_F(FleetTest, FailPrimaryDrillKeepsEveryLocation) {
  for (std::uint32_t bs = 0; bs < 12; bs += 3) add_ue(bs + 1, bs);
  fleet_.fail_primary_and_recover();
  for (const UeId ue : ues_) {
    const auto loc = fleet_.ue_location(ue);
    ASSERT_TRUE(loc.has_value()) << "lost UE " << ue.value();
    EXPECT_EQ(loc->bs, truth_.at(ue).bs);
  }
  // Every member actually lost a store replica in the drill.
  for (std::size_t r = 0; r < fleet_.replica_count(); ++r)
    EXPECT_EQ(fleet_.replica(r).store().replica_count(), 2u);
  expect_clean_audit();
}

TEST_F(FleetTest, TelemetryPublishesFleetAndPerReplicaSeries) {
  add_ue(1, 0);
  const auto snapshot = telemetry::Registry::global().collect();
  bool takeovers = false, replica0 = false, alive = false;
  for (const auto& s : snapshot.samples()) {
    if (s.name == "cluster.takeovers") takeovers = true;
    if (s.name == "cluster.replica0.path_installs") replica0 = true;
    if (s.name == "cluster.alive_replicas") {
      alive = true;
      EXPECT_EQ(s.value, 3);
    }
  }
  EXPECT_TRUE(takeovers);
  EXPECT_TRUE(replica0);
  EXPECT_TRUE(alive);
}

// --- the fleet behind SoftCellConfig -----------------------------------------

class ClusterNetTest : public ::testing::Test {
 protected:
  ClusterNetTest()
      : net_(SoftCellConfig{.topo = {.k = 4, .seed = 31},
                            .cluster_controllers = 3},
             make_table1_policy()) {}

  UeId silver_ue(std::uint32_t bs) {
    SubscriberProfile p;
    p.plan = BillingPlan::kSilver;
    const UeId ue = net_.add_subscriber(p);
    net_.attach(ue, bs);
    ues_.push_back(ue);
    return ue;
  }

  void expect_clean_audit() {
    const auto bad = net_.fleet()->audit_exactly_one_owner(ues_);
    EXPECT_TRUE(bad.empty()) << bad.front();
    const auto diverged = net_.fleet()->audit_engines_converged();
    EXPECT_FALSE(diverged.has_value()) << *diverged;
  }

  SoftCellNetwork net_;
  std::vector<UeId> ues_;
};

TEST_F(ClusterNetTest, EndToEndTrafficRunsThroughTheFleet) {
  ASSERT_NE(net_.fleet(), nullptr);
  EXPECT_EQ(net_.fleet()->replica_count(), 3u);
  for (std::uint32_t bs = 0; bs < 8; bs += 2) {
    const UeId ue = silver_ue(bs);
    const auto flow = net_.open_flow(ue, kServer, 80);
    const auto up = net_.send_uplink(flow, TcpFlag::kSyn);
    ASSERT_TRUE(up.delivered) << up.drop_reason;
    ASSERT_TRUE(net_.send_downlink(flow).delivered);
  }
  expect_clean_audit();
}

TEST_F(ClusterNetTest, HandoffAcrossOwnershipBoundaryIsServed) {
  // Find a handoff that crosses partition ownership: serving bs and target
  // bs whose partitions belong to different replicas.
  const std::uint32_t partitions = net_.fleet()->partition_count();
  std::optional<std::uint32_t> from, to;
  for (std::uint32_t a = 0; a < net_.topology().num_base_stations() && !from;
       ++a) {
    for (std::uint32_t b = 0; b < net_.topology().num_base_stations(); ++b) {
      const auto pa = partition_of_bs(a, partitions);
      const auto pb = partition_of_bs(b, partitions);
      if (pa != pb && expected_owner(pa, 3) != expected_owner(pb, 3)) {
        from = a;
        to = b;
        break;
      }
    }
  }
  ASSERT_TRUE(from && to);

  const UeId ue = silver_ue(*from);
  const auto flow = net_.open_flow(ue, kServer, 80);
  ASSERT_TRUE(net_.send_uplink(flow, TcpFlag::kSyn).delivered);

  const auto ticket = net_.handoff(ue, *to);
  EXPECT_GE(net_.fleet()->stats().cross_handoffs, 1u);
  EXPECT_EQ(net_.serving_bs(ue), *to);
  // In-flight traffic survives the move (downlink via the BS-BS tunnel;
  // shortcuts are forced off in fleet mode).
  const auto up = net_.send_uplink(flow);
  ASSERT_TRUE(up.delivered) << up.drop_reason;
  const auto down = net_.send_downlink(flow);
  ASSERT_TRUE(down.delivered) << down.drop_reason;
  EXPECT_TRUE(down.tunneled);
  EXPECT_TRUE(ticket.shortcuts.empty());

  net_.complete_handoff(ticket);
  const auto f2 = net_.open_flow(ue, kServer, 1935);
  ASSERT_TRUE(net_.send_uplink(f2, TcpFlag::kSyn).delivered);
  expect_clean_audit();
}

TEST_F(ClusterNetTest, LeaderCrashRebuildsLocationsFromAgents) {
  for (std::uint32_t bs = 0; bs < 12; bs += 2) silver_ue(bs);
  const auto victim = net_.fleet()->owner_of_bs(0);
  ASSERT_TRUE(victim.has_value());

  net_.fleet()->kill(*victim);
  net_.fleet()->settle();

  for (std::size_t i = 0; i < ues_.size(); ++i) {
    const auto bs = net_.serving_bs(ues_[i]);
    ASSERT_TRUE(bs.has_value()) << "lost UE " << ues_[i].value();
    EXPECT_EQ(*bs, static_cast<std::uint32_t>(i * 2));
  }
  EXPECT_GT(net_.fleet()->stats().rebuilt_locations, 0u);
  // New control-plane work is served by the survivors.
  const UeId late = silver_ue(7);
  const auto flow = net_.open_flow(late, kServer, 80);
  const auto up = net_.send_uplink(flow, TcpFlag::kSyn);
  ASSERT_TRUE(up.delivered) << up.drop_reason;
  expect_clean_audit();

  net_.fleet()->restart(*victim);
  net_.fleet()->settle();
  expect_clean_audit();
}

TEST_F(ClusterNetTest, FleetModeFailoverDrillKeepsTraffic) {
  const UeId ue = silver_ue(3);
  const auto flow = net_.open_flow(ue, kServer, 80);
  ASSERT_TRUE(net_.send_uplink(flow, TcpFlag::kSyn).delivered);

  net_.fail_controller_primary_and_recover();

  ASSERT_TRUE(net_.send_uplink(flow).delivered);
  ASSERT_TRUE(net_.send_downlink(flow).delivered);
  const auto f2 = net_.open_flow(ue, kServer, 1935);
  ASSERT_TRUE(net_.send_uplink(f2, TcpFlag::kSyn).delivered);
  expect_clean_audit();
}

TEST(ClusterConfig, FleetAndRuntimeAreMutuallyExclusive) {
  EXPECT_THROW(SoftCellNetwork(SoftCellConfig{.runtime_workers = 2,
                                              .cluster_controllers = 3},
                               make_table1_policy()),
               std::invalid_argument);
}

// --- concurrency (rerun under -DSOFTCELL_SANITIZE=thread) --------------------

TEST(ClusterConcurrency, MixedOpsAndFaultsKeepTheFleetConsistent) {
  CellularTopology topo({.k = 4, .seed = 1});
  ControllerFleet fleet(topo, make_table1_policy(), {.replicas = 3});
  const std::uint32_t num_bs = topo.num_base_stations();

  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kUesPerThread = 8;
  constexpr std::size_t kIters = 120;
  constexpr std::size_t kUes = kThreads * kUesPerThread;

  // Agent truth, written BEFORE the fleet call so a concurrent rebuild can
  // only ever read state at least as fresh as the fleet's own -- the query
  // touches nothing but this array (no lock-order interaction with mu_).
  std::vector<std::atomic<std::uint32_t>> truth(kUes + 1);
  fleet.set_location_query(
      [&truth](const std::function<void(UeId, UeLocation)>& sink) {
        for (std::uint32_t v = 1; v < truth.size(); ++v)
          sink(UeId(v), UeLocation{truth[v].load(),
                                   LocalUeId(static_cast<std::uint16_t>(v))});
      });

  std::vector<UeId> ues;
  for (std::uint32_t v = 1; v <= kUes; ++v) {
    const UeId ue(v);
    SubscriberProfile p;
    p.ue = ue;
    p.plan = BillingPlan::kSilver;
    fleet.provision_subscriber(ue, p);
    const std::uint32_t bs = v % num_bs;
    truth[v].store(bs);
    fleet.attach_ue(ue, bs, LocalUeId(static_cast<std::uint16_t>(v)));
    ues.push_back(ue);
  }

  std::vector<std::thread> threads;
  // Updaters: each owns a disjoint UE range and bounces it between base
  // stations; single writer per UE keeps the truth array authoritative.
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::size_t i = 0; i < kIters; ++i) {
        for (std::size_t k = 0; k < kUesPerThread; ++k) {
          const std::uint32_t v =
              static_cast<std::uint32_t>(t * kUesPerThread + k + 1);
          const std::uint32_t bs =
              static_cast<std::uint32_t>((v * 7 + i) % num_bs);
          truth[v].store(bs);
          fleet.update_location(UeId(v), bs,
                                LocalUeId(static_cast<std::uint16_t>(v)));
          if (i % 8 == 0) (void)fleet.ue_location(UeId(v));
          if (i % 16 == 0) (void)fleet.fetch_classifiers(UeId(v), bs);
        }
      }
    });
  }
  // Fault thread: only ever touches replica 2, so replicas 0 and 1 stay
  // usable and slow-state writes never starve.
  threads.emplace_back([&] {
    for (std::size_t i = 0; i < kIters; ++i) {
      fleet.force_expire(static_cast<std::uint32_t>((i * 5) % 16));
      if (i % 10 == 3) fleet.set_store_lag(2, true);
      if (i % 10 == 7) fleet.set_store_lag(2, false);
      if (i == kIters / 3) fleet.kill(2);
      if (i == kIters / 2) fleet.restart(2);
      if (i % 20 == 11) fleet.isolate(2);
      if (i % 20 == 15) fleet.heal(2);
      std::this_thread::yield();
    }
  });
  for (auto& th : threads) th.join();

  fleet.settle();
  for (const UeId ue : ues) {
    const auto loc = fleet.ue_location(ue);
    ASSERT_TRUE(loc.has_value()) << "lost UE " << ue.value();
    EXPECT_EQ(loc->bs, truth[ue.value()].load());
  }
  const auto bad = fleet.audit_exactly_one_owner(ues);
  EXPECT_TRUE(bad.empty()) << bad.front();
  const auto diverged = fleet.audit_engines_converged();
  EXPECT_FALSE(diverged.has_value()) << *diverged;
}

}  // namespace
}  // namespace softcell::cluster

// --- chaos: cluster corpus + the sixth invariant -----------------------------

namespace softcell::chaos {
namespace {

ChaosOptions cluster_corpus_options() {
  ChaosOptions opt;
  opt.cluster_controllers = 3;
  return opt;
}

std::size_t cluster_corpus_size() {
  // Same hatch as the base corpus: SOFTCELL_CHAOS_SEEDS shrinks expensive
  // reruns (tier1.sh under ASan/TSan); unset means the full 200.
  if (const char* env = std::getenv("SOFTCELL_CHAOS_SEEDS")) {
    const auto n = std::strtoull(env, nullptr, 10);
    if (n > 0) return static_cast<std::size_t>(n);
  }
  return 200;
}

TEST(ClusterCorpus, InvariantsHoldWithExactlyOneOwnerArmed) {
  const std::size_t n = cluster_corpus_size();
  const auto opt = cluster_corpus_options();
  std::size_t flows = 0, handoffs = 0, quiesces = 0;
  for (std::uint64_t seed = 1; seed <= n; ++seed) {
    const auto sc = Scenario::generate(seed, 36, /*cluster_steps=*/true);
    const auto r = run_scenario(sc, opt);
    ASSERT_TRUE(r.ok) << "seed " << seed << ": invariant "
                      << r.violation->invariant << " at step "
                      << r.violation->step << ": " << r.violation->detail
                      << "\n  " << replay_command(sc, opt);
    EXPECT_EQ(r.steps_executed, sc.steps.size());
    flows += r.flows_opened;
    handoffs += r.handoffs;
    quiesces += r.quiesces;
  }
  EXPECT_GT(flows, n);
  EXPECT_GT(handoffs, n / 2);
  EXPECT_GT(quiesces, n);
}

TEST(ClusterCorpus, SameSeedProducesIdenticalEventDigest) {
  const auto opt = cluster_corpus_options();
  for (const std::uint64_t seed : {2ull, 23ull, 77ull, 131ull, 188ull}) {
    const auto sc = Scenario::generate(seed, 36, /*cluster_steps=*/true);
    const auto r1 = run_scenario(sc, opt);
    const auto r2 = run_scenario(sc, opt);
    ASSERT_TRUE(r1.ok) << seed;
    EXPECT_EQ(r1.digest, r2.digest) << "nondeterministic digest, seed " << seed;
  }
}

TEST(ClusterCorpus, ClusterStepsActuallyFire) {
  // The cluster walk must draw the new step kinds, or the corpus above is
  // not testing what it claims to.
  std::size_t cluster_steps = 0;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const auto sc = Scenario::generate(seed, 36, /*cluster_steps=*/true);
    for (const auto& step : sc.steps)
      if (step.kind == Step::Kind::kCtrlKill ||
          step.kind == Step::Kind::kSplitBrain ||
          step.kind == Step::Kind::kStaleLease ||
          step.kind == Step::Kind::kStoreLag)
        ++cluster_steps;
    // And without the flag the walk is byte-identical to the legacy one.
    EXPECT_EQ(Scenario::generate(seed), Scenario::generate(seed, 36, false));
  }
  EXPECT_GT(cluster_steps, 20u);
}

TEST(ClusterSabotage, UnrevokedLeaseIsCaughtByInvariantSixAndShrunk) {
  // Acceptance check from the issue: killing a controller WITHOUT revoking
  // its leases must be caught -- the zombie's stale store gives a UE two
  // holders, which only the exactly-one-owner audit can see.
  auto opt = cluster_corpus_options();
  opt.sabotage = ChaosOptions::Sabotage::kLeaseNotRevoked;
  std::optional<Scenario> failing;
  for (std::uint64_t seed = 1; seed <= 40 && !failing; ++seed) {
    auto sc = Scenario::generate(seed, 36, /*cluster_steps=*/true);
    if (!run_scenario(sc, opt).ok) failing = std::move(sc);
  }
  ASSERT_TRUE(failing.has_value())
      << "kLeaseNotRevoked went undetected across 40 seeds";

  const auto full = run_scenario(*failing, opt);
  ASSERT_FALSE(full.ok);
  EXPECT_EQ(full.violation->invariant, 6) << full.violation->detail;

  std::size_t runs = 0;
  const auto small = shrink(*failing, opt, &runs);
  const auto r = run_scenario(small, opt);
  ASSERT_FALSE(r.ok) << "shrunk scenario no longer reproduces";
  EXPECT_EQ(r.violation->invariant, 6) << r.violation->detail;
  EXPECT_LT(small.steps.size(), failing->steps.size());
  std::cout << "  [shrunk to " << small.steps.size() << " steps after " << runs
            << " runs] " << replay_command(small, opt) << "\n";
}

TEST(ClusterReplay, OptionsRoundTripWithClusterCount) {
  ChaosOptions opt;
  opt.cluster_controllers = 3;
  opt.sabotage = ChaosOptions::Sabotage::kLeaseNotRevoked;
  const auto back = decode_options(encode_options(opt));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->cluster_controllers, 3u);
  EXPECT_EQ(back->sabotage, opt.sabotage);
  // Pre-cluster repro lines (no trailing c<n>) still decode.
  const auto legacy = decode_options("t1w0s1b0");
  ASSERT_TRUE(legacy.has_value());
  EXPECT_EQ(legacy->cluster_controllers, 0u);
}

}  // namespace
}  // namespace softcell::chaos
