// Commit-stage concurrency stress (run under -DSOFTCELL_SANITIZE=thread by
// tier1.sh): threads race cross-shard installs through the flat-combining
// CoreCommitter while readers spin on the RCU PathView.  Asserts the three
// ordering rules DESIGN.md section 16 promises:
//
//   * total order  -- the commit observer sees strictly increasing
//     sequence numbers, one per applied op, no op lost or duplicated;
//   * read-your-writes -- the snapshot loaded right after a commit
//     returns always contains the committed tag;
//   * exactly-once install -- racing duplicates of the same (bs, clause)
//     resolve to one tag and one core install.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <thread>
#include <vector>

#include "ctrl/core_committer.hpp"
#include "runtime/shard_brain.hpp"
#include "util/annotations.hpp"

namespace softcell {
namespace {

std::vector<ClauseId> distinct_clauses(const ServicePolicy& policy) {
  std::vector<ClauseId> out;
  for (const auto& clause : policy.clauses()) out.push_back(clause.id);
  return out;
}

TEST(CommitStageStress, RacingInstallsKeepTotalOrderAndNoLostOps) {
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kRounds = 60;
  constexpr std::uint32_t kBsCount = 12;

  CellularTopology topo({.k = 4, .seed = 3});
  auto policy = std::make_shared<const ServicePolicy>(make_table1_policy());
  const auto clauses = distinct_clauses(*policy);
  ASSERT_GE(clauses.size(), 2u);
  CoreCommitter committer(topo, policy, {});

  // Observer log: the combiner invokes it once per applied op.  Combiner
  // handoff is serialized by the stage's own mutex, so a plain vector
  // under a test mutex is enough for the log itself.
  struct Observed {
    std::size_t shard;
    std::uint64_t seq;
  };
  sc::Mutex log_mu;
  std::vector<Observed> log;
  committer.set_commit_observer([&](std::size_t shard, std::uint64_t seq) {
    sc::LockGuard lock(log_mu);
    log.push_back({shard, seq});
  });

  std::atomic<std::size_t> submitted{0};
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::size_t r = 0; r < kRounds; ++r) {
        const std::uint32_t bs = static_cast<std::uint32_t>((r + t) % kBsCount);
        const ClauseId clause = clauses[(r / kBsCount + t) % clauses.size()];
        const PolicyTag tag = committer.commit_path(t, bs, clause);
        submitted.fetch_add(1, std::memory_order_relaxed);
        // Read-your-writes: every snapshot loaded after the commit
        // returned carries the tag (publish happens BEFORE completion).
        const auto view = committer.view();
        const PolicyTag* seen = view->path(clause, bs);
        ASSERT_NE(seen, nullptr) << "bs " << bs;
        ASSERT_EQ(*seen, tag) << "bs " << bs;
      }
    });
  }
  // Racing readers: snapshot versions never go backwards, and a key once
  // seen never disappears from a later snapshot (no recompact here).
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    std::uint64_t last_version = 0;
    while (!stop.load(std::memory_order_acquire)) {
      const auto view = committer.view();
      ASSERT_GE(view->version, last_version);
      last_version = view->version;
    }
  });
  for (auto& th : threads) th.join();
  stop.store(true, std::memory_order_release);
  reader.join();

  // Total order, no lost ops: one observation per submitted op, sequence
  // numbers strictly increasing in observation order.
  ASSERT_EQ(log.size(), submitted.load());
  std::vector<std::size_t> per_shard(kThreads, 0);
  for (std::size_t i = 0; i < log.size(); ++i) {
    if (i > 0) {
      ASSERT_LT(log[i - 1].seq, log[i].seq);
    }
    ASSERT_LT(log[i].shard, kThreads);
    ++per_shard[log[i].shard];
  }
  // Each submitter blocks per op, so its ops arrive (and with total order,
  // apply) in program order: per-shard FIFO.  Count check closes the loop.
  for (std::size_t t = 0; t < kThreads; ++t) EXPECT_EQ(per_shard[t], kRounds);

  // Exactly-once: distinct (bs, clause) keys == core installs, and the
  // final snapshot resolves every key.
  const auto final_view = committer.view();
  std::map<std::pair<std::uint32_t, std::uint64_t>, PolicyTag> keys;
  for (std::size_t t = 0; t < kThreads; ++t) {
    for (std::size_t r = 0; r < kRounds; ++r) {
      const std::uint32_t bs = static_cast<std::uint32_t>((r + t) % kBsCount);
      const ClauseId clause = clauses[(r / kBsCount + t) % clauses.size()];
      const PolicyTag* tag = final_view->path(clause, bs);
      ASSERT_NE(tag, nullptr);
      keys.emplace(std::pair{bs, clause.value()}, *tag);
    }
  }
  EXPECT_EQ(committer.core().path_installs(), keys.size());
}

TEST(CommitStageStress, BrainReadersRaceCommitsWithoutTearing) {
  // Full-brain variant: shard-store readers (fetch_classifiers through the
  // RCU view) race path commits on every shard.  TSan is the real oracle
  // here; the assertions just pin the visible contract.
  ScopedBrainMode mode(true);
  CellularTopology topo({.k = 4, .seed = 7});
  ShardBrain brain(topo, make_table1_policy(), {.shards = 4});
  const auto clauses = distinct_clauses(*brain.policy_snapshot());

  // Single-threaded setup: provision + attach a population spread over
  // every shard, before the racing phase begins.
  std::vector<UeId> ues;
  for (std::uint32_t i = 1; i <= 64; ++i) {
    const UeId ue(i);
    SubscriberProfile p;
    p.ue = ue;
    p.provider = 0;
    p.plan = BillingPlan::kSilver;
    brain.provision_subscriber(ue, p);
    brain.attach_ue(ue, i % 12, LocalUeId(i));
    ues.push_back(ue);
  }

  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (std::size_t t = 0; t < 3; ++t) {
    writers.emplace_back([&, t] {
      for (std::size_t r = 0; r < 40; ++r) {
        const UeId ue = ues[(r * 7 + t * 13) % ues.size()];
        const auto tag = brain.request_policy_path(
            ue, static_cast<std::uint32_t>(r % 12),
            clauses[(r + t) % clauses.size()]);
        ASSERT_TRUE(tag.valid());
      }
    });
  }
  std::vector<std::thread> readers;
  for (std::size_t t = 0; t < 2; ++t) {
    readers.emplace_back([&, t] {
      std::size_t i = t;
      while (!stop.load(std::memory_order_acquire)) {
        const UeId ue = ues[i++ % ues.size()];
        const auto cls =
            brain.fetch_classifiers(ue, static_cast<std::uint32_t>(i % 12));
        // Compilation is against ONE view snapshot: tags either absent or
        // valid, never torn.
        ASSERT_EQ(cls.size(), 5u);
      }
    });
  }
  for (auto& th : writers) th.join();
  stop.store(true, std::memory_order_release);
  for (auto& th : readers) th.join();

  // Every committed key is in the final view.
  const auto view = brain.path_view();
  ASSERT_GT(view->paths.size(), 0u);
  EXPECT_EQ(brain.core().path_installs(), view->paths.size());
}

}  // namespace
}  // namespace softcell
