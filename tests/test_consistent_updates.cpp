// Consistent updates end to end over the southbound protocol: a path
// migration (install-new / flip / drain-old, the version-tag construction
// of Reitblatt et al., paper section 3.2) mirrored to switch agents with
// barrier fences -- at every phase, every packet matches either all-old or
// all-new rules, never a mixture.
#include <gtest/gtest.h>

#include "ofp/mirror.hpp"
#include "sim/network.hpp"

namespace softcell {
namespace {

constexpr Ipv4Addr kServer = 0x08080808u;

class ConsistentUpdateTest : public ::testing::Test {
 protected:
  ConsistentUpdateTest()
      : net_(SoftCellConfig{.topo = {.k = 4, .seed = 29}},
             make_table1_policy()),
        mirror_(net_.controller().engine()) {}

  // Walks one direction of the (clause, bs) path against the REPLICA
  // tables, checking it resolves end to end under `tag`.
  bool replica_walk(std::uint32_t bs, ClauseId clause, PolicyTag tag,
                    Direction dir) {
    const auto& topo = net_.topology();
    const auto instances = net_.controller().select_instances(bs, clause);
    const auto path = expand_policy_path(
        topo.graph(), net_.controller().routes(), dir, topo.access_switch(bs),
        instances, topo.gateway(), topo.internet());
    PolicyTag cur = tag;
    const Ipv4Addr addr = topo.bs_prefix(bs).addr();
    std::vector<const PathHop*> hops;
    for (const auto& h : path.fabric) hops.push_back(&h);
    for (const auto& h : path.access_tail) hops.push_back(&h);
    for (const PathHop* h : hops) {
      const auto* agent = mirror_.agent(h->sw);
      if (agent == nullptr) return false;
      auto hit = agent->table().lookup(dir, h->in_from, cur, addr);
      for (int depth = 0; hit && hit->action.resubmit && depth < 4; ++depth) {
        if (hit->action.set_tag) cur = *hit->action.set_tag;
        hit = agent->table().lookup(dir, h->in_from, cur, addr);
      }
      if (!hit || hit->action.out_to != h->out_to) return false;
      if (hit->action.set_tag) cur = *hit->action.set_tag;
    }
    return true;
  }

  SoftCellNetwork net_;
  ofp::Mirror mirror_;
};

TEST_F(ConsistentUpdateTest, MigrationPhasesOverTheWire) {
  SubscriberProfile p;
  p.plan = BillingPlan::kSilver;
  const UeId ue = net_.add_subscriber(p);
  net_.attach(ue, 6);
  const auto flow = net_.open_flow(ue, kServer, 80);
  ASSERT_TRUE(net_.send_uplink(flow, TcpFlag::kSyn).delivered);
  const auto* clause = net_.controller().policy().match(p, AppType::kWeb);
  ASSERT_NE(clause, nullptr);

  // Phase 0: initial install reaches the switches.
  ASSERT_GT(mirror_.sync(), 0u);
  const auto t_old = *net_.controller().store().path(clause->id, 6);
  for (const Direction dir : {Direction::kUplink, Direction::kDownlink})
    EXPECT_TRUE(replica_walk(6, clause->id, t_old, dir));

  // Phase 1: the new version is installed and fenced BEFORE anything is
  // flipped -- both versions resolve on the replicas.
  const auto mig = net_.controller().migrate_path(6, clause->id);
  ASSERT_GT(mirror_.sync(), 0u);
  for (const Direction dir : {Direction::kUplink, Direction::kDownlink}) {
    EXPECT_TRUE(replica_walk(6, clause->id, mig.old_tag, dir));
    EXPECT_TRUE(replica_walk(6, clause->id, mig.new_tag, dir));
  }

  // Phase 2 already happened at the controller (classifier flip); the old
  // flow keeps using old rules end to end in the live network.
  ASSERT_TRUE(net_.send_uplink(flow).delivered);
  ASSERT_TRUE(net_.send_downlink(flow).delivered);

  // Phase 3: drain.  Old rules disappear from the replicas; new stay.
  net_.controller().drain_old_path(6, clause->id, mig.old_tag);
  mirror_.sync();
  for (const Direction dir : {Direction::kUplink, Direction::kDownlink}) {
    EXPECT_FALSE(replica_walk(6, clause->id, mig.old_tag, dir));
    EXPECT_TRUE(replica_walk(6, clause->id, mig.new_tag, dir));
  }
}

TEST_F(ConsistentUpdateTest, MirrorTracksChurnExactly) {
  SubscriberProfile p;
  p.plan = BillingPlan::kSilver;
  // Spread traffic, then compare every touched switch's rule counts.
  for (std::uint32_t bs = 0; bs < 30; bs += 3) {
    const UeId ue = net_.add_subscriber(p);
    net_.attach(ue, bs);
    ASSERT_TRUE(
        net_.send_uplink(net_.open_flow(ue, kServer, 1935), TcpFlag::kSyn)
            .delivered);
  }
  mirror_.sync();
  std::size_t checked = 0;
  const auto& g = net_.topology().graph();
  for (std::uint32_t i = 0; i < g.node_count(); ++i) {
    const NodeId id(i);
    const auto* agent = mirror_.agent(id);
    if (agent == nullptr) continue;
    EXPECT_EQ(agent->table().rule_count(),
              net_.controller().engine().table(id).rule_count())
        << "switch " << i;
    ++checked;
  }
  EXPECT_GT(checked, 20u);
}

}  // namespace
}  // namespace softcell
