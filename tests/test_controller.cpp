#include "ctrl/controller.hpp"

#include <gtest/gtest.h>

namespace softcell {
namespace {

class ControllerTest : public ::testing::Test {
 protected:
  ControllerTest()
      : topo_({.k = 4, .seed = 3}), ctrl_(topo_, make_table1_policy()) {}

  UeId provision(std::uint32_t provider, BillingPlan plan = BillingPlan::kSilver) {
    const UeId ue(next_++);
    SubscriberProfile p;
    p.ue = ue;
    p.provider = provider;
    p.plan = plan;
    ctrl_.provision_subscriber(ue, p);
    return ue;
  }

  ClauseId clause_for(std::uint32_t provider, AppType app) {
    SubscriberProfile p;
    p.provider = provider;
    p.plan = BillingPlan::kSilver;
    const auto* c = ctrl_.policy().match(p, app);
    EXPECT_NE(c, nullptr);
    return c->id;
  }

  CellularTopology topo_;
  Controller ctrl_;
  std::uint32_t next_ = 1;
};

TEST_F(ControllerTest, AttachRequiresProvisioning) {
  EXPECT_THROW(ctrl_.attach_ue(UeId(99), 0, LocalUeId(0)),
               std::invalid_argument);
  const UeId ue = provision(0);
  ctrl_.attach_ue(ue, 3, LocalUeId(7));
  const auto loc = ctrl_.ue_location(ue);
  ASSERT_TRUE(loc);
  EXPECT_EQ(loc->bs, 3u);
  EXPECT_EQ(loc->local, LocalUeId(7));
  ctrl_.detach_ue(ue);
  EXPECT_FALSE(ctrl_.ue_location(ue));
}

TEST_F(ControllerTest, ClassifiersCoverAllAppTypes) {
  const UeId ue = provision(0);
  const auto cls = ctrl_.fetch_classifiers(ue, 0);
  EXPECT_EQ(cls.size(), 5u);
  for (const auto& c : cls) EXPECT_TRUE(c.allow);  // home subscriber
  // No path installed yet: every classifier says "ask the controller".
  for (const auto& c : cls) EXPECT_FALSE(c.tag.has_value());
}

TEST_F(ControllerTest, ForeignProviderClassifiersDeny) {
  const UeId ue = provision(7);
  const auto cls = ctrl_.fetch_classifiers(ue, 0);
  for (const auto& c : cls) EXPECT_FALSE(c.allow);
}

TEST_F(ControllerTest, RequestPolicyPathIsIdempotent) {
  const auto clause = clause_for(0, AppType::kWeb);
  const auto t1 = ctrl_.request_policy_path(5, clause);
  const auto installs = ctrl_.path_installs();
  const auto t2 = ctrl_.request_policy_path(5, clause);
  EXPECT_EQ(t1, t2);
  EXPECT_EQ(ctrl_.path_installs(), installs);  // no re-install
}

TEST_F(ControllerTest, ClassifiersCarryTagOnceInstalled) {
  const UeId ue = provision(0);
  const auto clause = clause_for(0, AppType::kWeb);
  const auto tag = ctrl_.request_policy_path(2, clause);
  const auto cls = ctrl_.fetch_classifiers(ue, 2);
  bool found = false;
  for (const auto& c : cls) {
    if (c.clause == clause) {
      EXPECT_EQ(c.tag, tag);
      found = true;
    }
  }
  EXPECT_TRUE(found);
  // A different base station is still uninstalled.
  for (const auto& c : ctrl_.fetch_classifiers(ue, 3))
    if (c.clause == clause) EXPECT_FALSE(c.tag.has_value());
}

TEST_F(ControllerTest, SameClauseSharesTagsAcrossBaseStations) {
  const auto clause = clause_for(0, AppType::kWeb);
  const auto t0 = ctrl_.request_policy_path(0, clause);
  std::size_t same = 0;
  for (std::uint32_t bs = 1; bs < 30; ++bs)
    if (ctrl_.request_policy_path(bs, clause) == t0) ++same;
  EXPECT_GE(same, 25u);  // aggressive tag reuse via the clause hint
}

TEST_F(ControllerTest, SelectInstancesRespectsPlacement) {
  const auto clause = clause_for(0, AppType::kVideo);  // firewall+transcoder
  const auto inst = ctrl_.select_instances(100, clause);
  ASSERT_EQ(inst.size(), 2u);
  // GatewayHeavy: firewall at a core-layer instance...
  bool fw_is_core = false;
  for (std::uint32_t w = 0; w < 2; ++w) {
    if (topo_.core_instance(mb::kFirewall, w).node == inst[0]) fw_is_core = true;
  }
  EXPECT_TRUE(fw_is_core);
  // ...transcoder pod-local.
  EXPECT_EQ(inst[1], topo_.pod_instance(mb::kTranscoder, topo_.pod_of_bs(100)).node);
}

TEST_F(ControllerTest, PodLocalPlacement) {
  ControllerOptions opts;
  opts.placement = InstancePlacement::kPodLocal;
  Controller ctrl(topo_, make_table1_policy(), opts);
  const auto clause = clause_for(0, AppType::kVideo);
  const auto inst = ctrl.select_instances(42, clause);
  const auto pod = topo_.pod_of_bs(42);
  EXPECT_EQ(inst[0], topo_.pod_instance(mb::kFirewall, pod).node);
  EXPECT_EQ(inst[1], topo_.pod_instance(mb::kTranscoder, pod).node);
}

TEST_F(ControllerTest, InstalledPathsWalkEndToEnd) {
  const auto clause = clause_for(0, AppType::kVideo);
  const auto tag = ctrl_.request_policy_path(7, clause);
  const auto instances = ctrl_.select_instances(7, clause);
  for (Direction dir : {Direction::kUplink, Direction::kDownlink}) {
    const auto path = expand_policy_path(
        topo_.graph(), ctrl_.routes(), dir, topo_.access_switch(7), instances,
        topo_.gateway(), topo_.internet());
    const auto w = ctrl_.engine().walk(path, tag, topo_.bs_prefix(7));
    EXPECT_TRUE(w.ok) << to_string(dir) << ": " << w.error;
  }
}

TEST_F(ControllerTest, MigrationKeepsBothVersionsUntilDrain) {
  const auto clause = clause_for(0, AppType::kWeb);
  const auto t_old = ctrl_.request_policy_path(4, clause);
  const auto rules_one_version = ctrl_.engine().total_rules();

  const auto mig = ctrl_.migrate_path(4, clause);
  EXPECT_EQ(mig.old_tag, t_old);
  EXPECT_NE(mig.new_tag, t_old);
  // Both versions are installed now.
  EXPECT_GT(ctrl_.engine().total_rules(), rules_one_version);

  // Old flows still walk under the old tag, new flows under the new tag.
  const auto instances = ctrl_.select_instances(4, clause);
  const auto down = expand_policy_path(
      topo_.graph(), ctrl_.routes(), Direction::kDownlink,
      topo_.access_switch(4), instances, topo_.gateway(), topo_.internet());
  EXPECT_TRUE(ctrl_.engine().walk(down, mig.old_tag, topo_.bs_prefix(4)).ok);
  EXPECT_TRUE(ctrl_.engine().walk(down, mig.new_tag, topo_.bs_prefix(4)).ok);

  ctrl_.drain_old_path(4, clause, mig.old_tag);
  EXPECT_TRUE(ctrl_.engine().walk(down, mig.new_tag, topo_.bs_prefix(4)).ok);
  EXPECT_THROW(ctrl_.drain_old_path(4, clause, mig.old_tag),
               std::invalid_argument);
}

TEST_F(ControllerTest, MigrationNotifiesClassifierListener) {
  const auto clause = clause_for(0, AppType::kWeb);
  (void)ctrl_.request_policy_path(4, clause);
  std::optional<PolicyTag> pushed;
  ctrl_.set_classifier_listener(
      [&](std::uint32_t bs, ClauseId c, PolicyTag t) {
        EXPECT_EQ(bs, 4u);
        EXPECT_EQ(c, clause);
        pushed = t;
      });
  const auto mig = ctrl_.migrate_path(4, clause);
  ASSERT_TRUE(pushed);
  EXPECT_EQ(*pushed, mig.new_tag);
}

TEST_F(ControllerTest, MigrateUnknownPathThrows) {
  EXPECT_THROW(ctrl_.migrate_path(0, clause_for(0, AppType::kWeb)),
               std::invalid_argument);
}

TEST_F(ControllerTest, FailoverPreservesSlowState) {
  const UeId ue = provision(0);
  ctrl_.attach_ue(ue, 1, LocalUeId(0));
  const auto clause = clause_for(0, AppType::kWeb);
  const auto tag = ctrl_.request_policy_path(1, clause);

  ctrl_.fail_primary_replica();
  // Paths and profiles survive; classifiers still resolve the tag.
  const auto cls = ctrl_.fetch_classifiers(ue, 1);
  bool found = false;
  for (const auto& c : cls)
    if (c.clause == clause && c.tag == tag) found = true;
  EXPECT_TRUE(found);
  // Locations are rebuilt from agents.
  EXPECT_FALSE(ctrl_.ue_location(ue));
  ctrl_.rebuild_locations([&](const std::function<void(UeId, UeLocation)>& s) {
    s(ue, UeLocation{1, LocalUeId(0)});
  });
  ASSERT_TRUE(ctrl_.ue_location(ue));
  EXPECT_EQ(ctrl_.ue_location(ue)->bs, 1u);
}

}  // namespace
}  // namespace softcell
