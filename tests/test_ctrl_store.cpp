// Controller-level failover drills: fail_primary_replica() followed by
// rebuild_locations() racing concurrent handoff traffic, the deterministic
// rebuild-vs-handoff interleavings, and the by-value profile() guarantee
// that makes all of it safe (see ctrl/store.hpp).  A chaos scenario pins
// the same drill between a handoff and its completion.
#include "ctrl/controller.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "chaos/harness.hpp"

namespace softcell {
namespace {

SubscriberProfile silver(UeId ue) {
  SubscriberProfile p;
  p.ue = ue;
  p.plan = BillingPlan::kSilver;
  return p;
}

TEST(StoreProfile, CopySurvivesFailoverAndRehash) {
  ControlStore s(3);
  s.put_profile(UeId(1), silver(UeId(1)));
  const auto held = s.profile(UeId(1));
  ASSERT_TRUE(held.has_value());

  // The returned value is a copy: destroying the primary replica (which a
  // returned pointer would dangle into) and rehashing the map under heavy
  // growth must leave it untouched.
  s.fail_primary();
  for (std::uint32_t v = 2; v < 200; ++v) s.put_profile(UeId(v), silver(UeId(v)));
  EXPECT_EQ(held->ue, UeId(1));
  EXPECT_EQ(held->plan, BillingPlan::kSilver);
  ASSERT_TRUE(s.profile(UeId(1)).has_value());
  EXPECT_TRUE(s.replicas_consistent());
}

TEST(ControllerFailover, RebuildUnderConcurrentHandoffConverges) {
  CellularTopology topo({.k = 4, .seed = 1});
  Controller ctrl(topo, make_table1_policy(),
                  ControllerOptions{.store_replicas = 6});
  const std::uint32_t num_bs = topo.num_base_stations();

  constexpr std::size_t kThreads = 3;
  constexpr std::size_t kUesPerThread = 8;
  constexpr std::size_t kIters = 150;
  constexpr std::size_t kUes = kThreads * kUesPerThread;

  // Agent truth: written BEFORE the controller call, one writer per UE, so
  // a rebuild query concurrent with a handoff reads state at least as fresh
  // as the controller's own.
  std::vector<std::atomic<std::uint32_t>> truth(kUes + 1);
  const auto query = [&truth](
      const std::function<void(UeId, UeLocation)>& sink) {
    for (std::uint32_t v = 1; v < truth.size(); ++v)
      sink(UeId(v), UeLocation{truth[v].load(),
                               LocalUeId(static_cast<std::uint16_t>(v))});
  };

  for (std::uint32_t v = 1; v <= kUes; ++v) {
    ctrl.provision_subscriber(UeId(v), silver(UeId(v)));
    truth[v].store(v % num_bs);
    ctrl.attach_ue(UeId(v), v % num_bs,
                   LocalUeId(static_cast<std::uint16_t>(v)));
  }

  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::size_t i = 0; i < kIters; ++i) {
        for (std::size_t k = 0; k < kUesPerThread; ++k) {
          const std::uint32_t v =
              static_cast<std::uint32_t>(t * kUesPerThread + k + 1);
          const std::uint32_t bs =
              static_cast<std::uint32_t>((v * 11 + i) % num_bs);
          truth[v].store(bs);
          ctrl.update_location(UeId(v), bs,
                               LocalUeId(static_cast<std::uint16_t>(v)));
          if (i % 8 == 0) (void)ctrl.ue_location(UeId(v));
          if (i % 16 == 0) (void)ctrl.fetch_classifiers(UeId(v), bs);
        }
      }
    });
  }
  // The failover thread runs the section-5.2 drill repeatedly while the
  // handoffs churn: five of the six store replicas die over the run.
  threads.emplace_back([&] {
    for (int drill = 0; drill < 5; ++drill) {
      ctrl.fail_primary_replica();
      ctrl.rebuild_locations(query);
      std::this_thread::yield();
    }
  });
  for (auto& th : threads) th.join();

  // Whoever wrote last -- updater or rebuild -- must agree with truth.
  for (std::uint32_t v = 1; v <= kUes; ++v) {
    const auto loc = ctrl.ue_location(UeId(v));
    ASSERT_TRUE(loc.has_value()) << "lost UE " << v;
    EXPECT_EQ(loc->bs, truth[v].load()) << "UE " << v;
  }
  EXPECT_EQ(ctrl.store().replica_count(), 1u);
  EXPECT_TRUE(ctrl.store().replicas_consistent());
}

TEST(ControllerFailover, HandoffBeforeRebuildWinsDeterministically) {
  // The handoff lands first, then the rebuild queries agents that already
  // saw the move: the rebuilt map reflects the new base station.
  CellularTopology topo({.k = 4, .seed = 1});
  Controller ctrl(topo, make_table1_policy());
  ctrl.provision_subscriber(UeId(1), silver(UeId(1)));
  ctrl.attach_ue(UeId(1), 2, LocalUeId(1));

  ctrl.fail_primary_replica();
  ctrl.update_location(UeId(1), 5, LocalUeId(1));  // handoff during outage
  ctrl.rebuild_locations([](const std::function<void(UeId, UeLocation)>& s) {
    s(UeId(1), UeLocation{5, LocalUeId(1)});  // agents saw the move
  });

  const auto loc = ctrl.ue_location(UeId(1));
  ASSERT_TRUE(loc.has_value());
  EXPECT_EQ(loc->bs, 5u);
}

TEST(ControllerFailover, HandoffAfterRebuildOverwritesStaleTruth) {
  // The rebuild ran against pre-handoff agent state; the late handoff
  // message must still win -- update_location after rebuild_locations
  // leaves the UE at its true base station.
  CellularTopology topo({.k = 4, .seed = 1});
  Controller ctrl(topo, make_table1_policy());
  ctrl.provision_subscriber(UeId(1), silver(UeId(1)));
  ctrl.attach_ue(UeId(1), 2, LocalUeId(1));

  ctrl.fail_primary_replica();
  ctrl.rebuild_locations([](const std::function<void(UeId, UeLocation)>& s) {
    s(UeId(1), UeLocation{2, LocalUeId(1)});  // stale: pre-handoff
  });
  ctrl.update_location(UeId(1), 5, LocalUeId(1));  // late handoff arrives

  const auto loc = ctrl.ue_location(UeId(1));
  ASSERT_TRUE(loc.has_value());
  EXPECT_EQ(loc->bs, 5u);
}

}  // namespace
}  // namespace softcell

namespace softcell::chaos {
namespace {

TEST(ChaosFailover, PrimaryLossBetweenHandoffAndCompletionPasses) {
  // Directed scenario: the controller loses its primary store replica while
  // a handoff is in flight (ticket issued, not yet completed).  The rebuild
  // must re-learn the post-handoff location from the agents, and every
  // invariant -- including the admitted middlebox sequence of the moved
  // flow -- must hold through the completion and the final sweep.
  Scenario sc;
  sc.seed = 42;
  using K = Step::Kind;
  sc.steps = {{K::kAttach, 0, 1},          {K::kAttach, 1, 4},
              {K::kOpenFlow, 0, 0},        {K::kOpenFlow, 1, 1},
              {K::kSendUplink, 0, 0},      {K::kQuiesce, 0, 0},
              {K::kHandoff, 0, 6},         {K::kFailover, 0, 0},
              {K::kSendUplink, 0, 0},      {K::kSendDownlink, 0, 0},
              {K::kCompleteHandoff, 0, 0}, {K::kQuiesce, 0, 0}};
  const auto r = run_scenario(sc);
  ASSERT_TRUE(r.ok) << "invariant " << r.violation->invariant << " at step "
                    << r.violation->step << ": " << r.violation->detail;
  EXPECT_EQ(r.steps_executed, sc.steps.size());
  EXPECT_GE(r.handoffs, 1u);
}

}  // namespace
}  // namespace softcell::chaos
