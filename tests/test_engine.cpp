#include "core/engine.hpp"

#include <gtest/gtest.h>

#include "topo/cellular.hpp"
#include "util/rng.hpp"

namespace softcell {
namespace {

class EngineTest : public ::testing::Test {
 protected:
  EngineTest() : topo_({.k = 4, .seed = 11}), routes_(topo_.graph()) {}

  ExpandedPath expand(Direction dir, std::uint32_t bs,
                      std::vector<NodeId> mbs) const {
    return expand_policy_path(topo_.graph(), routes_, dir,
                              topo_.access_switch(bs), mbs, topo_.gateway(),
                              topo_.internet());
  }

  AggregationEngine make_engine(EngineOptions opts = {}) const {
    return AggregationEngine(topo_.graph(), opts);
  }

  std::vector<NodeId> mbs(std::initializer_list<const MiddleboxInstance*> l) const {
    std::vector<NodeId> out;
    for (const auto* m : l) out.push_back(m->node);
    return out;
  }

  CellularTopology topo_;
  RoutingOracle routes_;
};

TEST_F(EngineTest, SinglePathInstallsTagDefaultsAndWalks) {
  auto eng = make_engine();
  const auto path = expand(Direction::kDownlink, 0,
                           mbs({&topo_.pod_instance(0, 0)}));
  const auto r = eng.install(path, 0, topo_.bs_prefix(0));
  EXPECT_FALSE(r.reused_tag);
  EXPECT_EQ(r.extra_tags, 0u);
  // Every hop needs one rule, plus the hand-off into the shared delivery
  // tier at the last middlebox host.
  EXPECT_EQ(static_cast<std::size_t>(r.new_rules),
            path.fabric.size() + path.access_tail.size() + 1);
  const auto w = eng.walk(path, r.tag, topo_.bs_prefix(0));
  EXPECT_TRUE(w.ok) << w.error;
}

TEST_F(EngineTest, WalkFailsWithWrongTag) {
  auto eng = make_engine();
  const auto path = expand(Direction::kDownlink, 0,
                           mbs({&topo_.pod_instance(0, 0)}));
  const auto r = eng.install(path, 0, topo_.bs_prefix(0));
  const PolicyTag wrong(static_cast<std::uint16_t>(r.tag.value() + 1));
  EXPECT_FALSE(eng.walk(path, wrong, topo_.bs_prefix(0)).ok);
}

TEST_F(EngineTest, SameClauseFromManyBaseStationsReusesTag) {
  auto eng = make_engine();
  const auto seq = mbs({&topo_.core_instance(0, 0), &topo_.core_instance(1, 0)});
  std::optional<PolicyTag> hint;
  std::size_t reused = 0;
  for (std::uint32_t bs = 0; bs < 40; ++bs) {
    const auto path = expand(Direction::kDownlink, bs, seq);
    const auto r = eng.install(path, bs, topo_.bs_prefix(bs), hint);
    hint = r.tag;
    if (r.reused_tag) ++reused;
    const auto w = eng.walk(path, r.tag, topo_.bs_prefix(bs));
    EXPECT_TRUE(w.ok) << "bs " << bs << ": " << w.error;
  }
  // Nearly every subsequent base station shares the first one's tag.
  EXPECT_GE(reused, 35u);
  EXPECT_LE(eng.tags_in_use(), 3u);
}

TEST_F(EngineTest, SharedTrunkCostsLittle) {
  auto eng = make_engine();
  const auto seq = mbs({&topo_.core_instance(2, 0)});
  const auto p0 = expand(Direction::kDownlink, 0, seq);
  const auto r0 = eng.install(p0, 0, topo_.bs_prefix(0));
  // A sibling base station (same ring, adjacent prefix): the shared trunk
  // should be nearly free, divergence limited to the delivery part.
  const auto p1 = expand(Direction::kDownlink, 1, seq);
  const auto r1 = eng.install(p1, 1, topo_.bs_prefix(1), r0.tag);
  EXPECT_TRUE(r1.reused_tag);
  EXPECT_LT(r1.new_rules, r0.new_rules);
}

TEST_F(EngineTest, PathsFromSameBsNeverShareTag) {
  auto eng = make_engine();
  const auto pa = expand(Direction::kDownlink, 0, mbs({&topo_.pod_instance(0, 0)}));
  const auto pb = expand(Direction::kDownlink, 0, mbs({&topo_.pod_instance(1, 0)}));
  const auto ra = eng.install(pa, 0, topo_.bs_prefix(0));
  // Hint at the other path's tag: must be rejected for the same BS.
  const auto rb = eng.install(pb, 0, topo_.bs_prefix(0), ra.tag);
  EXPECT_NE(ra.tag, rb.tag);
  EXPECT_TRUE(eng.walk(pa, ra.tag, topo_.bs_prefix(0)).ok);
  EXPECT_TRUE(eng.walk(pb, rb.tag, topo_.bs_prefix(0)).ok);
}

TEST_F(EngineTest, DivergentPathsWithSameTagUsePrefixRules) {
  auto eng = make_engine();
  // Same tag forced by hints, but different transcoder instances: rules
  // must diverge on the location dimension (Fig. 3(c) scenario).
  const auto pa = expand(Direction::kDownlink, 0,
                         mbs({&topo_.core_instance(0, 0)}));
  const auto ra = eng.install(pa, 0, topo_.bs_prefix(0));
  const auto pb = expand(Direction::kDownlink, 20,
                         mbs({&topo_.core_instance(0, 1)}));
  const auto rb = eng.install(pb, 20, topo_.bs_prefix(20), ra.tag);
  EXPECT_TRUE(eng.walk(pa, ra.tag, topo_.bs_prefix(0)).ok);
  EXPECT_TRUE(eng.walk(pb, rb.tag, topo_.bs_prefix(20)).ok);
}

TEST_F(EngineTest, AllPairsStayRoutableUnderLoad) {
  auto eng = make_engine();
  Rng rng(5);
  struct Live {
    ExpandedPath path;
    PolicyTag tag;
    Prefix pre;
  };
  std::vector<Live> live;
  std::unordered_map<std::uint32_t, PolicyTag> clause_hint;
  for (int i = 0; i < 200; ++i) {
    const auto bs =
        static_cast<std::uint32_t>(rng.next_below(topo_.num_base_stations()));
    const auto clause = static_cast<std::uint32_t>(rng.next_below(8));
    // Deterministic per-clause middlebox sequence.
    Rng crng(clause * 977 + 13);
    std::vector<NodeId> seq;
    const auto len = 1 + crng.next_below(3);
    for (std::uint64_t m = 0; m < len; ++m) {
      const auto type = static_cast<std::uint32_t>(
          crng.next_below(topo_.num_middlebox_types()));
      const auto& inst = crng.next_bernoulli(0.5)
                             ? topo_.core_instance(type, 0)
                             : topo_.pod_instance(type, topo_.pod_of_bs(bs));
      seq.push_back(inst.node);
    }
    const auto path = expand(Direction::kDownlink, bs, seq);
    std::optional<PolicyTag> hint;
    if (auto it = clause_hint.find(clause); it != clause_hint.end())
      hint = it->second;
    const auto r = eng.install(path, bs, topo_.bs_prefix(bs), hint);
    clause_hint[clause] = r.tag;
    live.push_back(Live{path, r.tag, topo_.bs_prefix(bs)});
    // Every previously installed path must still walk correctly: installs
    // never corrupt existing paths.
    if (i % 20 == 19) {
      for (const auto& l : live) {
        const auto w = eng.walk(l.path, l.tag, l.pre);
        ASSERT_TRUE(w.ok) << w.error;
      }
    }
  }
}

TEST_F(EngineTest, LoopThroughSameMiddleboxTwiceSplitsTags) {
  auto eng = make_engine();
  const auto& m = topo_.pod_instance(0, 0);
  // Visiting the same instance twice forces the host switch to see two
  // conflicting from-middlebox hops -> tag swap (section 3.2 loops).
  const auto path = expand(Direction::kUplink, 0, {m.node, m.node});
  const auto r = eng.install(path, 0, topo_.bs_prefix(0));
  EXPECT_GE(r.extra_tags, 1u);
  const auto w = eng.walk(path, r.tag, topo_.bs_prefix(0));
  EXPECT_TRUE(w.ok) << w.error;
}

TEST_F(EngineTest, RemoveRestoresEmptyTables) {
  auto eng = make_engine();
  std::vector<PathId> handles;
  std::vector<std::pair<ExpandedPath, std::pair<PolicyTag, Prefix>>> live;
  for (std::uint32_t bs = 0; bs < 10; ++bs) {
    const auto path =
        expand(Direction::kDownlink, bs, mbs({&topo_.core_instance(1, 0)}));
    const auto r = eng.install(path, bs, topo_.bs_prefix(bs));
    handles.push_back(r.path);
    live.emplace_back(path, std::make_pair(r.tag, topo_.bs_prefix(bs)));
  }
  EXPECT_GT(eng.total_rules(), 0u);
  // Remove half; the rest must still walk.
  for (std::size_t i = 0; i < 5; ++i) eng.remove(handles[i]);
  for (std::size_t i = 5; i < 10; ++i) {
    const auto w = eng.walk(live[i].first, live[i].second.first,
                            live[i].second.second);
    EXPECT_TRUE(w.ok) << w.error;
  }
  for (std::size_t i = 5; i < 10; ++i) eng.remove(handles[i]);
  EXPECT_EQ(eng.total_rules(), 0u);
  EXPECT_EQ(eng.tags_in_use(), 1u);  // only the reserved delivery tag
}

TEST_F(EngineTest, RemoveUnknownPathThrows) {
  auto eng = make_engine();
  EXPECT_THROW(eng.remove(PathId(123)), std::invalid_argument);
}

TEST_F(EngineTest, NewRulesAccountingMatchesTotals) {
  auto eng = make_engine();
  std::int64_t acc = 0;
  for (std::uint32_t bs = 0; bs < 25; ++bs) {
    const auto path = expand(Direction::kDownlink, bs,
                             mbs({&topo_.pod_instance(2, topo_.pod_of_bs(bs))}));
    const auto r = eng.install(path, bs, topo_.bs_prefix(bs));
    acc += r.new_rules;
    EXPECT_EQ(static_cast<std::int64_t>(eng.total_rules()), acc);
  }
}

TEST_F(EngineTest, FreshTagAblationUsesManyMoreTags) {
  EngineOptions reuse;
  EngineOptions fresh;
  fresh.reuse_tags = false;
  auto a = make_engine(reuse);
  auto b = make_engine(fresh);
  const auto seq = mbs({&topo_.core_instance(3, 0)});
  for (std::uint32_t bs = 0; bs < 30; ++bs) {
    const auto path = expand(Direction::kDownlink, bs, seq);
    (void)a.install(path, bs, topo_.bs_prefix(bs));
    (void)b.install(path, bs, topo_.bs_prefix(bs));
  }
  // +1: the reserved delivery tag is always held.
  EXPECT_LT(a.tags_in_use(), 5u);
  EXPECT_EQ(b.tags_in_use(), 31u);
  EXPECT_LT(a.total_rules(), b.total_rules());
}

TEST_F(EngineTest, UplinkAndDownlinkCoexist) {
  auto eng = make_engine();
  const auto seq = mbs({&topo_.pod_instance(0, 0)});
  const auto up = expand(Direction::kUplink, 0, seq);
  const auto down = expand(Direction::kDownlink, 0, seq);
  const auto ru = eng.install(up, 0, topo_.bs_prefix(0));
  const auto rd = eng.install(down, 0, topo_.bs_prefix(0), ru.tag);
  EXPECT_TRUE(eng.walk(up, ru.tag, topo_.bs_prefix(0)).ok);
  EXPECT_TRUE(eng.walk(down, rd.tag, topo_.bs_prefix(0)).ok);
}

TEST_F(EngineTest, TableStatsSeparateFabricFromAccess) {
  auto eng = make_engine();
  // Station 4 sits deep in the ring -> access tail rules exist.
  const auto path = expand(Direction::kDownlink, 4, {});
  (void)eng.install(path, 4, topo_.bs_prefix(4));
  const auto s = eng.table_stats();
  std::size_t fabric_total = 0, access_total = 0;
  for (auto v : s.fabric_sizes) fabric_total += v;
  for (auto v : s.access_sizes) access_total += v;
  EXPECT_GT(fabric_total, 0u);
  EXPECT_GT(access_total, 0u);
  EXPECT_EQ(fabric_total + access_total, eng.total_rules());
  EXPECT_EQ(s.type3, access_total);  // tails are location-only rules
}

TEST_F(EngineTest, SiblingDeliveryPrefixesMergeInRing) {
  auto eng = make_engine();
  // Stations 2 and 3 share a sibling prefix pair and the same ring
  // direction: their tail rules at station 0/1 switches should merge.
  const auto p2 = expand(Direction::kDownlink, 2, {});
  const auto p3 = expand(Direction::kDownlink, 3, {});
  (void)eng.install(p2, 2, topo_.bs_prefix(2));
  const auto before = eng.total_rules();
  (void)eng.install(p3, 3, topo_.bs_prefix(3));
  const auto added = eng.total_rules() - before;
  // Strictly fewer new rules than the full hop count thanks to merges.
  EXPECT_LT(added, p3.fabric.size() + p3.access_tail.size());
}

// Property test: random install/remove churn never corrupts routing and
// drains to zero.
TEST_F(EngineTest, ChurnInvariant) {
  auto eng = make_engine();
  Rng rng(23);
  struct Live {
    PathId id;
    ExpandedPath path;
    PolicyTag tag;
    Prefix pre;
  };
  std::vector<Live> live;
  for (int step = 0; step < 300; ++step) {
    if (live.empty() || rng.next_bernoulli(0.65)) {
      const auto bs = static_cast<std::uint32_t>(
          rng.next_below(topo_.num_base_stations()));
      const auto type = static_cast<std::uint32_t>(
          rng.next_below(topo_.num_middlebox_types()));
      const auto& inst = topo_.pod_instance(type, topo_.pod_of_bs(bs));
      const auto dir =
          rng.next_bernoulli(0.5) ? Direction::kUplink : Direction::kDownlink;
      const auto path = expand(dir, bs, {inst.node});
      const auto r = eng.install(path, bs, topo_.bs_prefix(bs));
      live.push_back(Live{r.path, path, r.tag, topo_.bs_prefix(bs)});
    } else {
      const auto idx = rng.next_below(live.size());
      eng.remove(live[idx].id);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
    }
    if (step % 25 == 24) {
      for (const auto& l : live) {
        const auto w = eng.walk(l.path, l.tag, l.pre);
        ASSERT_TRUE(w.ok) << w.error;
      }
    }
  }
  for (const auto& l : live) eng.remove(l.id);
  EXPECT_EQ(eng.total_rules(), 0u);
  EXPECT_EQ(eng.tags_in_use(), 1u);  // only the reserved delivery tag
}

}  // namespace
}  // namespace softcell

namespace softcell {
namespace {

class CapacityTest : public ::testing::Test {
 protected:
  CapacityTest() : topo_({.k = 4, .seed = 11}), routes_(topo_.graph()) {}

  ExpandedPath down(std::uint32_t bs, NodeId mb) const {
    return expand_policy_path(topo_.graph(), routes_, Direction::kDownlink,
                              topo_.access_switch(bs), std::vector<NodeId>{mb},
                              topo_.gateway(), topo_.internet());
  }

  CellularTopology topo_;
  RoutingOracle routes_;
};

TEST_F(CapacityTest, OverflowRejectsAndRollsBackCleanly) {
  EngineOptions opts;
  opts.switch_capacity = 12;  // deliberately tiny TCAMs
  AggregationEngine eng(topo_.graph(), opts);

  struct Live {
    ExpandedPath path;
    PolicyTag tag;
    Prefix pre;
  };
  std::vector<Live> live;
  std::size_t rejected = 0;
  // Distinct clauses exhaust tables quickly (no tag sharing across them).
  for (std::uint32_t c = 0; c < 30; ++c) {
    const NodeId mb = topo_.middleboxes()[c % topo_.middleboxes().size()].node;
    const std::uint32_t bs = (c * 7) % topo_.num_base_stations();
    const auto path = down(bs, mb);
    const auto before = eng.total_rules();
    try {
      const auto r = eng.install(path, bs, topo_.bs_prefix(bs));
      live.push_back(Live{path, r.tag, topo_.bs_prefix(bs)});
    } catch (const AggregationEngine::PathRejected& e) {
      ++rejected;
      EXPECT_TRUE(e.sw.valid());
      // Atomic rejection: nothing changed.
      EXPECT_EQ(eng.total_rules(), before);
    }
    // Capacity invariant holds on every fabric switch at all times.
    for (auto sz : eng.table_stats().fabric_sizes) ASSERT_LE(sz, 12u);
  }
  EXPECT_GT(rejected, 0u);
  EXPECT_GT(live.size(), 0u);
  // Everything that was admitted still works.
  for (const auto& l : live)
    EXPECT_TRUE(eng.walk(l.path, l.tag, l.pre).ok);
}

TEST_F(CapacityTest, SpaceFreedByRemovalIsReusable) {
  EngineOptions opts;
  opts.switch_capacity = 12;
  AggregationEngine eng(topo_.graph(), opts);

  // Fill until the first rejection.
  std::vector<PathId> handles;
  std::uint32_t c = 0;
  for (;; ++c) {
    const NodeId mb = topo_.middleboxes()[c % topo_.middleboxes().size()].node;
    const std::uint32_t bs = (c * 7) % topo_.num_base_stations();
    try {
      handles.push_back(
          eng.install(down(bs, mb), bs, topo_.bs_prefix(bs)).path);
    } catch (const AggregationEngine::PathRejected&) {
      break;
    }
    ASSERT_LT(c, 1000u);
  }
  // Free everything; the rejected request now fits.
  for (const auto h : handles) eng.remove(h);
  EXPECT_EQ(eng.total_rules(), 0u);
  const NodeId mb = topo_.middleboxes()[c % topo_.middleboxes().size()].node;
  const std::uint32_t bs = (c * 7) % topo_.num_base_stations();
  const auto r = eng.install(down(bs, mb), bs, topo_.bs_prefix(bs));
  EXPECT_TRUE(eng.walk(down(bs, mb), r.tag, topo_.bs_prefix(bs)).ok);
}

TEST_F(CapacityTest, UnboundedByDefault) {
  AggregationEngine eng(topo_.graph(), {});
  EXPECT_EQ(eng.table(topo_.gateway()).capacity(), 0u);
  EXPECT_FALSE(eng.table(topo_.gateway()).full());
}

}  // namespace
}  // namespace softcell
