// Pins the Algorithm-1 fast path (EngineOptions::fastpath) to the
// pre-fast-path reference scan: identical tag choices and rule state over
// randomized workloads, exact tag recycling across uninstalls, and the
// incrementally maintained indexes (inverted tag-usage index, presence
// bitset, per-class digest) agreeing with recounts from the authoritative
// class map.
#include "core/engine.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <unordered_map>
#include <vector>

#include "topo/cellular.hpp"
#include "topo/routing.hpp"
#include "util/rng.hpp"

namespace softcell {
namespace {

class EngineFastpathTest : public ::testing::Test {
 protected:
  EngineFastpathTest() : topo_({.k = 4, .seed = 7}), routes_(topo_.graph()) {}

  // One pseudo-random clause: a base station plus a UE-specific middlebox
  // chain, expanded in `dir`.  Mirrors bench_agg_fastpath's workload shape
  // (no hint, so every install runs the full candTag search).
  struct Clause {
    std::uint32_t bs = 0;
    ExpandedPath path;
  };
  Clause random_clause(Rng& rng, Direction dir, std::uint32_t bs_count) {
    Clause c;
    c.bs = rng.next_below(bs_count);
    std::vector<NodeId> instances;
    const std::uint32_t ntypes = topo_.num_middlebox_types();
    for (std::uint32_t t = 0; t < 3 && t < ntypes; ++t) {
      const auto& insts = topo_.instances_of_type(t);
      instances.push_back(
          topo_.middleboxes()[insts[rng.next_below(insts.size())]].node);
    }
    c.path = expand_policy_path(topo_.graph(), routes_, dir,
                                topo_.access_switch(c.bs), instances,
                                topo_.gateway(), topo_.internet());
    return c;
  }

  AggregationEngine make_engine(bool fastpath, bool track_paths = false) {
    EngineOptions opts;
    opts.fastpath = fastpath;
    opts.track_paths = track_paths;
    opts.max_candidates = 16;
    return AggregationEngine(topo_.graph(), opts);
  }

  // Full per-switch, per-direction comparison of the two engines' rule
  // state: counts and the tag-usage index must be identical.
  void expect_same_tables(const AggregationEngine& a,
                          const AggregationEngine& b) {
    ASSERT_EQ(a.total_rules(), b.total_rules());
    ASSERT_EQ(a.tags_in_use(), b.tags_in_use());
    for (std::uint32_t n = 0; n < topo_.graph().node_count(); ++n) {
      const NodeId sw(n);
      const SwitchTable& ta = a.table(sw);
      const SwitchTable& tb = b.table(sw);
      ASSERT_EQ(ta.rule_count(), tb.rule_count()) << "switch " << n;
      for (const Direction dir : {Direction::kUplink, Direction::kDownlink}) {
        // Iterate-only comparison via the visitor form: collect and sort
        // instead of materializing two maps per (switch, direction).
        auto collect = [dir](const SwitchTable& t) {
          std::vector<std::pair<PolicyTag, std::uint32_t>> v;
          t.for_each_recounted_tag(
              dir, [&v](PolicyTag tag, std::uint32_t cnt) {
                v.emplace_back(tag, cnt);
              });
          std::sort(v.begin(), v.end(),
                    [](const auto& x, const auto& y) {
                      return x.first.value() < y.first.value();
                    });
          // Merge per-class contributions of the same tag.
          std::vector<std::pair<PolicyTag, std::uint32_t>> merged;
          for (const auto& [tag, cnt] : v) {
            if (!merged.empty() && merged.back().first == tag)
              merged.back().second += cnt;
            else
              merged.emplace_back(tag, cnt);
          }
          return merged;
        };
        ASSERT_EQ(collect(ta), collect(tb)) << "switch " << n;
      }
    }
  }

  CellularTopology topo_;
  RoutingOracle routes_;
};

// Tentpole pin: the indexed/memoized scoring path must pick the same tag
// and produce the same rule delta as the reference scan on every install
// of a randomized workload.
TEST_F(EngineFastpathTest, RandomizedDifferentialMatchesReferenceScan) {
  auto fast = make_engine(/*fastpath=*/true);
  auto ref = make_engine(/*fastpath=*/false);
  Rng rng_f(2024), rng_r(2024);
  constexpr std::uint32_t kClauses = 400;
  constexpr std::uint32_t kBs = 16;
  for (std::uint32_t i = 0; i < kClauses; ++i) {
    const Direction dir =
        (i % 4 == 0) ? Direction::kUplink : Direction::kDownlink;
    const Clause cf = random_clause(rng_f, dir, kBs);
    const Clause cr = random_clause(rng_r, dir, kBs);
    ASSERT_EQ(cf.bs, cr.bs);
    const auto rf =
        fast.install(cf.path, cf.bs, topo_.bs_prefix(cf.bs), std::nullopt);
    const auto rr =
        ref.install(cr.path, cr.bs, topo_.bs_prefix(cr.bs), std::nullopt);
    ASSERT_EQ(rf.tag, rr.tag) << "install " << i;
    ASSERT_EQ(rf.new_rules, rr.new_rules) << "install " << i;
    ASSERT_EQ(rf.reused_tag, rr.reused_tag) << "install " << i;
  }
  expect_same_tables(fast, ref);
}

// Same differential under uninstall churn: removals invalidate the memo
// and shrink the digest/index state, and subsequent installs must still
// agree with the reference scan.
TEST_F(EngineFastpathTest, DifferentialSurvivesUninstallChurn) {
  auto fast = make_engine(/*fastpath=*/true, /*track_paths=*/true);
  auto ref = make_engine(/*fastpath=*/false, /*track_paths=*/true);
  Rng rng_f(4711), rng_r(4711);
  constexpr std::uint32_t kBs = 12;
  std::vector<PathId> ids_f, ids_r;
  for (std::uint32_t i = 0; i < 200; ++i) {
    const Clause cf = random_clause(rng_f, Direction::kDownlink, kBs);
    const Clause cr = random_clause(rng_r, Direction::kDownlink, kBs);
    const auto rf =
        fast.install(cf.path, cf.bs, topo_.bs_prefix(cf.bs), std::nullopt);
    const auto rr =
        ref.install(cr.path, cr.bs, topo_.bs_prefix(cr.bs), std::nullopt);
    ASSERT_EQ(rf.tag, rr.tag) << "install " << i;
    ids_f.push_back(rf.path);
    ids_r.push_back(rr.path);
  }
  for (std::size_t i = 0; i < ids_f.size(); i += 3) {
    fast.remove(ids_f[i]);
    ref.remove(ids_r[i]);
  }
  expect_same_tables(fast, ref);
  for (std::uint32_t i = 0; i < 120; ++i) {
    const Clause cf = random_clause(rng_f, Direction::kDownlink, kBs);
    const Clause cr = random_clause(rng_r, Direction::kDownlink, kBs);
    const auto rf =
        fast.install(cf.path, cf.bs, topo_.bs_prefix(cf.bs), std::nullopt);
    const auto rr =
        ref.install(cr.path, cr.bs, topo_.bs_prefix(cr.bs), std::nullopt);
    ASSERT_EQ(rf.tag, rr.tag) << "post-churn install " << i;
    ASSERT_EQ(rf.new_rules, rr.new_rules) << "post-churn install " << i;
  }
  expect_same_tables(fast, ref);
}

// Directed tag recycling: install -> uninstall returns every per-tag
// structure to its pre-install state, and a reinstall draws from the free
// list instead of allocating fresh tag values.
TEST_F(EngineFastpathTest, TagRecyclingRestoresEngineState) {
  auto eng = make_engine(/*fastpath=*/true, /*track_paths=*/true);
  Rng rng(99);
  constexpr std::uint32_t kBs = 8;
  const std::size_t tags_before = eng.tags_in_use();  // delivery tag only
  ASSERT_EQ(eng.bs_tag_refs(), 0u);
  ASSERT_EQ(eng.free_tag_count(), 0u);
  const std::size_t rules_before = eng.total_rules();

  std::vector<PathId> ids;
  std::vector<Clause> clauses;
  for (std::uint32_t i = 0; i < 24; ++i)
    clauses.push_back(random_clause(rng, Direction::kDownlink, kBs));
  for (const Clause& c : clauses)
    ids.push_back(
        eng.install(c.path, c.bs, topo_.bs_prefix(c.bs), std::nullopt).path);
  const std::size_t allocated_after_install = eng.tags_allocated();
  const std::size_t in_use_after_install = eng.tags_in_use();
  ASSERT_GT(in_use_after_install, tags_before);

  for (const PathId id : ids) eng.remove(id);
  EXPECT_EQ(eng.tags_in_use(), tags_before);  // tag_refs_ fully drained
  EXPECT_EQ(eng.bs_tag_refs(), 0u);           // bs_tags_ fully drained
  EXPECT_EQ(eng.total_rules(), rules_before);
  EXPECT_EQ(eng.free_tag_count(), allocated_after_install - tags_before);

  // Reinstall the same workload: every tag comes off the free list (no
  // fresh allocations), though the candidate search may settle on fewer
  // tags than round one -- the MRU seed list now remembers round one.
  ids.clear();
  for (const Clause& c : clauses)
    ids.push_back(
        eng.install(c.path, c.bs, topo_.bs_prefix(c.bs), std::nullopt).path);
  EXPECT_EQ(eng.tags_allocated(), allocated_after_install);
  EXPECT_LE(eng.tags_in_use(), in_use_after_install);
  for (const PathId id : ids) eng.remove(id);
  EXPECT_EQ(eng.tags_in_use(), tags_before);
  EXPECT_EQ(eng.bs_tag_refs(), 0u);
  EXPECT_EQ(eng.total_rules(), rules_before);
}

// Property: after arbitrary install/uninstall churn the incrementally
// maintained per-(switch, direction) inverted index -- and the presence
// bitset and structural epochs layered on it -- agree with a recount from
// the authoritative class map.
TEST_F(EngineFastpathTest, InvertedIndexMatchesRecountAfterChurn) {
  auto eng = make_engine(/*fastpath=*/true, /*track_paths=*/true);
  Rng rng(1234);
  constexpr std::uint32_t kBs = 10;
  std::vector<PathId> live;
  for (std::uint32_t round = 0; round < 300; ++round) {
    const bool remove_one = !live.empty() && rng.next_below(3) == 0;
    if (remove_one) {
      const std::size_t pick = rng.next_below(live.size());
      eng.remove(live[pick]);
      live[pick] = live.back();
      live.pop_back();
    } else {
      const Direction dir = rng.next_below(2) == 0 ? Direction::kUplink
                                                   : Direction::kDownlink;
      const Clause c = random_clause(rng, dir, kBs);
      live.push_back(
          eng.install(c.path, c.bs, topo_.bs_prefix(c.bs), std::nullopt).path);
    }
  }
  for (std::uint32_t n = 0; n < topo_.graph().node_count(); ++n) {
    const SwitchTable& tbl = eng.table(NodeId(n));
    for (const Direction dir : {Direction::kUplink, Direction::kDownlink}) {
      const auto recount = tbl.debug_recount_tag_usage(dir);
      // Index == recount, exactly (same keys, same counts).
      std::size_t indexed = 0;
      for (const auto& [tag, use] : tbl.tag_usage(dir)) {
        ++indexed;
        const auto it = recount.find(tag);
        ASSERT_NE(it, recount.end())
            << "switch " << n << ": stale index entry for tag " << tag.value();
        ASSERT_EQ(use.count, it->second)
            << "switch " << n << " tag " << tag.value();
        ASSERT_GT(use.epoch, 0u);
      }
      ASSERT_EQ(indexed, recount.size()) << "switch " << n;
      // Presence bitset and epoch agree with the index for every tag value
      // ever allocated.
      for (std::uint32_t t = 0; t < eng.tags_allocated(); ++t) {
        const PolicyTag tag(static_cast<std::uint16_t>(t));
        const bool present = recount.contains(tag);
        ASSERT_EQ(tbl.carries_tag(dir, tag), present)
            << "switch " << n << " tag " << t;
        ASSERT_EQ(tbl.tag_epoch(dir, tag) != 0, present)
            << "switch " << n << " tag " << t;
      }
    }
  }
}

// Property: the dense per-class digest agrees with the origin-free class
// summary, and its origin-specific claims hold against real resolves.
TEST_F(EngineFastpathTest, DigestAgreesWithClassStateAfterChurn) {
  auto eng = make_engine(/*fastpath=*/true, /*track_paths=*/true);
  Rng rng(5678);
  constexpr std::uint32_t kBs = 10;
  std::vector<PathId> live;
  for (std::uint32_t round = 0; round < 250; ++round) {
    if (!live.empty() && rng.next_below(4) == 0) {
      const std::size_t pick = rng.next_below(live.size());
      eng.remove(live[pick]);
      live[pick] = live.back();
      live.pop_back();
    } else {
      const Clause c = random_clause(rng, Direction::kDownlink, kBs);
      live.push_back(
          eng.install(c.path, c.bs, topo_.bs_prefix(c.bs), std::nullopt).path);
    }
  }
  using Digest = SwitchTable::Digest;
  for (std::uint32_t n = 0; n < topo_.graph().node_count(); ++n) {
    const SwitchTable& tbl = eng.table(NodeId(n));
    for (const Direction dir : {Direction::kUplink, Direction::kDownlink}) {
      const auto* col = tbl.digest_column(dir, InPortSpec::any());
      for (std::uint32_t t = 0; t < eng.tags_allocated(); ++t) {
        const PolicyTag tag(static_cast<std::uint16_t>(t));
        const Digest d = SwitchTable::digest_at(col, tag);
        const auto s = tbl.class_summary(dir, InPortSpec::any(), tag);
        switch (s.kind) {
          case SwitchTable::ClassSummary::Kind::kAbsent:
            ASSERT_EQ(d.kind, Digest::Kind::kAbsent);
            break;
          case SwitchTable::ClassSummary::Kind::kDefaultOnly:
            ASSERT_EQ(d.kind, Digest::Kind::kDefaultOnly);
            ASSERT_EQ(d.act, s.def);
            // pfilter is rebuilt exactly on every refresh; len_mask is a
            // conservative superset (bits are never cleared on removal).
            ASSERT_EQ(d.pfilter, 0u);
            break;
          case SwitchTable::ClassSummary::Kind::kMixed:
            ASSERT_NE(d.kind, Digest::Kind::kAbsent);
            ASSERT_NE(d.kind, Digest::Kind::kDefaultOnly);
            ASSERT_NE(d.pfilter, 0u);  // at least one prefix entry
            ASSERT_NE(d.len_mask, 0u);
            break;
        }
        // Origin-specific spot checks: for single-action kinds every
        // origin must resolve to the digest's action; a Bloom-filter miss
        // must mean resolve falls through past the prefix tier.
        for (std::uint32_t b = 0; b < kBs; ++b) {
          const Prefix origin = topo_.bs_prefix(b);
          const auto r = tbl.resolve(dir, InPortSpec::any(), tag, origin,
                                     /*fall_through=*/true);
          if (d.kind == Digest::Kind::kDefaultOnly ||
              d.kind == Digest::Kind::kCovered) {
            ASSERT_TRUE(r.has_value());
            ASSERT_EQ(r->action, d.act);
          } else if (d.kind == Digest::Kind::kUniform && r.has_value()) {
            ASSERT_EQ(r->action, d.act);
          }
          std::uint64_t q = 0;
          for (std::uint32_t len = 0; len <= origin.len(); ++len) {
            if ((d.len_mask >> len) & 1)
              q |= SwitchTable::pfilter_bit(
                  Prefix(origin.addr(), static_cast<std::uint8_t>(len)));
          }
          if ((d.pfilter & q) == 0 && r.has_value()) {
            // No prefix entry can contain the origin: the resolve must
            // have come from a default.
            ASSERT_TRUE(r->is_default)
                << "switch " << n << " tag " << t << " bs " << b;
          }
        }
      }
    }
  }
}

}  // namespace
}  // namespace softcell
