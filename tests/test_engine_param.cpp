// Parameterized engine invariant sweeps: the same soundness properties
// checked across topology sizes, directions, clause shapes and engine
// configurations.
//
// Invariants (DESIGN.md section 6):
//   I1  after installing, every path walks end to end;
//   I2  installs never corrupt previously installed paths;
//   I3  removal drains every table back to empty;
//   I4  merged prefixes are exact sibling unions (spot-checked via walks
//       from *both* siblings);
//   I5  rule accounting (new_rules sum == total_rules).
#include <gtest/gtest.h>

#include "core/engine.hpp"
#include "topo/cellular.hpp"
#include "util/rng.hpp"

namespace softcell {
namespace {

struct ParamCase {
  std::uint32_t k;
  Direction dir;
  std::uint32_t num_clauses;
  std::uint32_t mbs_per_clause;
  bool shared_delivery;
  std::size_t max_candidates;
  const char* name;
};

std::string case_name(const ::testing::TestParamInfo<ParamCase>& info) {
  return info.param.name;
}

class EngineSweep : public ::testing::TestWithParam<ParamCase> {
 protected:
  EngineSweep()
      : topo_({.k = GetParam().k, .seed = 77}), routes_(topo_.graph()) {}

  std::vector<NodeId> clause_instances(std::uint32_t clause) const {
    Rng rng(clause * 131 + 7);
    std::vector<NodeId> out;
    for (std::uint32_t i = 0; i < GetParam().mbs_per_clause; ++i) {
      const auto type = static_cast<std::uint32_t>(
          rng.next_below(topo_.num_middlebox_types()));
      const auto& insts = topo_.instances_of_type(type);
      out.push_back(
          topo_.middleboxes()[insts[rng.next_below(insts.size())]].node);
    }
    return out;
  }

  CellularTopology topo_;
  RoutingOracle routes_;
};

TEST_P(EngineSweep, InstallWalkRemoveInvariants) {
  const auto& p = GetParam();
  EngineOptions opts;
  opts.shared_delivery = p.shared_delivery;
  opts.max_candidates = p.max_candidates;
  AggregationEngine eng(topo_.graph(), opts);

  struct Live {
    PathId id;
    ExpandedPath path;
    PolicyTag tag;
    Prefix pre;
  };
  std::vector<Live> live;
  std::int64_t accounted = 0;
  std::vector<std::optional<PolicyTag>> hints(p.num_clauses);

  // Installs: every clause from a sample of base stations.
  const std::uint32_t stride = std::max(1u, topo_.num_base_stations() / 24);
  for (std::uint32_t c = 0; c < p.num_clauses; ++c) {
    const auto instances = clause_instances(c);
    for (std::uint32_t bs = 0; bs < topo_.num_base_stations(); bs += stride) {
      const auto path = expand_policy_path(topo_.graph(), routes_, p.dir,
                                           topo_.access_switch(bs), instances,
                                           topo_.gateway(), topo_.internet());
      const auto r = eng.install(path, bs, topo_.bs_prefix(bs), hints[c]);
      hints[c] = r.tag;
      accounted += r.new_rules;
      live.push_back(Live{r.path, path, r.tag, topo_.bs_prefix(bs)});
      // I5: accounting matches totals at every step.
      ASSERT_EQ(accounted, static_cast<std::int64_t>(eng.total_rules()));
    }
  }

  // I1 + I2: every path (old and new) walks.
  for (const auto& l : live) {
    const auto w = eng.walk(l.path, l.tag, l.pre);
    ASSERT_TRUE(w.ok) << w.error;
  }

  // I3: removal in an interleaved order drains everything.
  for (std::size_t i = 0; i < live.size(); i += 2) eng.remove(live[i].id);
  for (std::size_t i = 1; i < live.size(); i += 2) {
    const auto w = eng.walk(live[i].path, live[i].tag, live[i].pre);
    ASSERT_TRUE(w.ok) << w.error;  // survivors unharmed mid-removal
    eng.remove(live[i].id);
  }
  EXPECT_EQ(eng.total_rules(), 0u);
  EXPECT_EQ(eng.tags_in_use(), 1u);  // reserved delivery tag only
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EngineSweep,
    ::testing::Values(
        ParamCase{2, Direction::kDownlink, 4, 1, true, 32, "k2_down_m1"},
        ParamCase{2, Direction::kUplink, 4, 1, true, 32, "k2_up_m1"},
        ParamCase{4, Direction::kDownlink, 6, 2, true, 32, "k4_down_m2"},
        ParamCase{4, Direction::kUplink, 6, 2, true, 32, "k4_up_m2"},
        ParamCase{4, Direction::kDownlink, 4, 3, true, 32, "k4_down_m3"},
        ParamCase{4, Direction::kDownlink, 6, 2, false, 32,
                  "k4_down_m2_nodelivery"},
        ParamCase{4, Direction::kUplink, 4, 3, false, 32, "k4_up_m3_nodelivery"},
        ParamCase{4, Direction::kDownlink, 6, 2, true, 1, "k4_down_m2_cap1"},
        ParamCase{4, Direction::kDownlink, 6, 2, true, 0,
                  "k4_down_m2_uncapped"},
        ParamCase{6, Direction::kDownlink, 4, 2, true, 32, "k6_down_m2"}),
    case_name);

// --- candidate-cap equivalence: the bounded scan loses almost nothing ----

class CapSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CapSweep, RuleCountsCloseToUncapped) {
  CellularTopology topo({.k = 4, .seed = 3});
  RoutingOracle routes(topo.graph());

  const auto run = [&](std::size_t cap) {
    EngineOptions opts;
    opts.max_candidates = cap;
    AggregationEngine eng(topo.graph(), opts);
    Rng rng(5);
    std::vector<std::optional<PolicyTag>> hints(6);
    for (std::uint32_t c = 0; c < 6; ++c) {
      const auto type = static_cast<std::uint32_t>(
          rng.next_below(topo.num_middlebox_types()));
      const NodeId inst = topo.core_instance(type, c % 2).node;
      for (std::uint32_t bs = 0; bs < topo.num_base_stations(); bs += 5) {
        const auto path = expand_policy_path(
            topo.graph(), routes, Direction::kDownlink,
            topo.access_switch(bs), std::vector<NodeId>{inst}, topo.gateway(),
            topo.internet());
        const auto r = eng.install(path, bs, topo.bs_prefix(bs), hints[c]);
        hints[c] = r.tag;
      }
    }
    return eng.total_rules();
  };

  const auto uncapped = run(0);
  const auto capped = run(GetParam());
  // Within 25% of the full candTag scan.
  EXPECT_LE(capped, uncapped + uncapped / 4);
}

INSTANTIATE_TEST_SUITE_P(Caps, CapSweep,
                         ::testing::Values(std::size_t{1}, std::size_t{4},
                                           std::size_t{16}, std::size_t{64}));

}  // namespace
}  // namespace softcell
