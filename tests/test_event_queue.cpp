#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

namespace softcell {
namespace {

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.at(3.0, [&] { order.push_back(3); });
  q.at(1.0, [&] { order.push_back(1); });
  q.at(2.0, [&] { order.push_back(2); });
  EXPECT_EQ(q.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(q.now(), 3.0);
}

TEST(EventQueue, StableForEqualTimes) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) q.at(1.0, [&, i] { order.push_back(i); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, AfterSchedulesRelative) {
  EventQueue q;
  double fired_at = -1;
  q.at(2.0, [&] { q.after(0.5, [&] { fired_at = q.now(); }); });
  q.run();
  EXPECT_DOUBLE_EQ(fired_at, 2.5);
}

TEST(EventQueue, RejectsPastScheduling) {
  EventQueue q;
  q.at(5.0, [] {});
  q.run();
  EXPECT_THROW(q.at(1.0, [] {}), std::invalid_argument);
}

TEST(EventQueue, RunUntilLeavesLaterEvents) {
  EventQueue q;
  int ran = 0;
  q.at(1.0, [&] { ++ran; });
  q.at(2.0, [&] { ++ran; });
  q.at(3.0, [&] { ++ran; });
  EXPECT_EQ(q.run_until(2.5), 2u);
  EXPECT_EQ(ran, 2);
  EXPECT_DOUBLE_EQ(q.now(), 2.5);
  EXPECT_EQ(q.pending(), 1u);
}

TEST(EventQueue, EventsCanScheduleEvents) {
  EventQueue q;
  int depth = 0;
  std::function<void()> recur = [&] {
    if (++depth < 10) q.after(1.0, recur);
  };
  q.at(0.0, recur);
  EXPECT_EQ(q.run(), 10u);
  EXPECT_EQ(depth, 10);
  EXPECT_DOUBLE_EQ(q.now(), 9.0);
}

TEST(EventQueue, RunWithCap) {
  EventQueue q;
  int ran = 0;
  for (int i = 0; i < 10; ++i) q.at(i, [&] { ++ran; });
  EXPECT_EQ(q.run(4), 4u);
  EXPECT_EQ(ran, 4);
  EXPECT_EQ(q.pending(), 6u);
}

}  // namespace
}  // namespace softcell
