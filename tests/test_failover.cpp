// Control-plane failure handling (paper section 5.2): controller replica
// failover with agent-assisted location rebuild, local agent restart, and
// consistent path migration observed end to end.
#include "sim/network.hpp"

#include <gtest/gtest.h>

namespace softcell {
namespace {

constexpr Ipv4Addr kServer = 0x08080808u;

class FailoverTest : public ::testing::Test {
 protected:
  FailoverTest() : net_(SoftCellConfig{.topo = {.k = 4, .seed = 31}},
                        make_table1_policy()) {}

  UeId silver_ue(std::uint32_t bs) {
    SubscriberProfile p;
    p.plan = BillingPlan::kSilver;
    const UeId ue = net_.add_subscriber(p);
    net_.attach(ue, bs);
    return ue;
  }

  SoftCellNetwork net_;
};

TEST_F(FailoverTest, ControllerFailoverRebuildsLocationsFromAgents) {
  std::vector<std::pair<UeId, std::uint32_t>> placed;
  for (std::uint32_t bs = 0; bs < 12; bs += 2)
    placed.emplace_back(silver_ue(bs), bs);

  net_.fail_controller_primary_and_recover();

  // serving_bs reads through the active control plane (shard stores in
  // shard-brain mode, the single store in legacy mode).
  for (const auto& [ue, bs] : placed) {
    const auto loc = net_.serving_bs(ue);
    ASSERT_TRUE(loc) << "lost UE " << ue.value();
    EXPECT_EQ(*loc, bs);
  }
  EXPECT_TRUE(net_.controller().store().replicas_consistent());
}

TEST_F(FailoverTest, TrafficFlowsAcrossControllerFailover) {
  const UeId ue = silver_ue(3);
  const auto flow = net_.open_flow(ue, kServer, 80);
  ASSERT_TRUE(net_.send_uplink(flow, TcpFlag::kSyn).delivered);

  net_.fail_controller_primary_and_recover();

  // Existing flows are pure data plane: unaffected.
  ASSERT_TRUE(net_.send_uplink(flow).delivered);
  ASSERT_TRUE(net_.send_downlink(flow).delivered);
  // New flows need the (recovered) controller for classifier state.
  const auto f2 = net_.open_flow(ue, kServer, 1935);
  const auto d = net_.send_uplink(f2, TcpFlag::kSyn);
  ASSERT_TRUE(d.delivered) << d.drop_reason;
  // New attachments work against the promoted replica too.
  const UeId late = silver_ue(7);
  const auto f3 = net_.open_flow(late, kServer, 80);
  EXPECT_TRUE(net_.send_uplink(f3, TcpFlag::kSyn).delivered);
}

TEST_F(FailoverTest, AgentRestartIsTransparentToTraffic) {
  const UeId ue = silver_ue(4);
  const auto flow = net_.open_flow(ue, kServer, 80);
  ASSERT_TRUE(net_.send_uplink(flow, TcpFlag::kSyn).delivered);
  const auto locip_before =
      net_.send_uplink(flow).final_packet.key.src_ip;

  net_.restart_agent(4);

  // Old flows keep flowing with the same LocIP (switch rules survived).
  const auto up = net_.send_uplink(flow);
  ASSERT_TRUE(up.delivered) << up.drop_reason;
  EXPECT_EQ(up.final_packet.key.src_ip, locip_before);
  ASSERT_TRUE(net_.send_downlink(flow).delivered);
  // New flows classify correctly from refetched state.
  const auto f2 = net_.open_flow(ue, kServer, 5060);
  EXPECT_TRUE(net_.send_uplink(f2, TcpFlag::kSyn).delivered);
}

TEST_F(FailoverTest, ConsistentMigrationEndToEnd) {
  const UeId ue = silver_ue(6);
  const auto old_flow = net_.open_flow(ue, kServer, 80);
  const auto up0 = net_.send_uplink(old_flow, TcpFlag::kSyn);
  ASSERT_TRUE(up0.delivered);
  const auto old_tag = net_.codec().tag_of(up0.final_packet.key.src_port);

  SubscriberProfile p;
  p.plan = BillingPlan::kSilver;
  const auto* clause = net_.controller().policy().match(p, AppType::kWeb);
  ASSERT_NE(clause, nullptr);
  const auto mig = net_.controller().migrate_path(6, clause->id);
  EXPECT_EQ(mig.old_tag, old_tag);

  // Per-packet consistency: the old flow still runs entirely on old-tag
  // rules; a new flow picks up the new tag end to end.
  const auto up_old = net_.send_uplink(old_flow);
  ASSERT_TRUE(up_old.delivered) << up_old.drop_reason;
  EXPECT_EQ(net_.codec().tag_of(up_old.final_packet.key.src_port), mig.old_tag);
  ASSERT_TRUE(net_.send_downlink(old_flow).delivered);

  const auto new_flow = net_.open_flow(ue, kServer + 1, 80);
  const auto up_new = net_.send_uplink(new_flow, TcpFlag::kSyn);
  ASSERT_TRUE(up_new.delivered) << up_new.drop_reason;
  EXPECT_EQ(net_.codec().tag_of(up_new.final_packet.key.src_port), mig.new_tag);
  ASSERT_TRUE(net_.send_downlink(new_flow).delivered);

  // After the old flow ends, draining removes the old version; the new
  // version keeps working.
  net_.controller().drain_old_path(6, clause->id, mig.old_tag);
  ASSERT_TRUE(net_.send_uplink(new_flow).delivered);
  ASSERT_TRUE(net_.send_downlink(new_flow).delivered);
}

TEST_F(FailoverTest, RepeatedFailoverWithThreeReplicas) {
  const UeId ue = silver_ue(1);
  const auto flow = net_.open_flow(ue, kServer, 80);
  ASSERT_TRUE(net_.send_uplink(flow, TcpFlag::kSyn).delivered);
  net_.fail_controller_primary_and_recover();
  net_.fail_controller_primary_and_recover();  // two of three replicas gone
  ASSERT_TRUE(net_.send_uplink(flow).delivered);
  const auto loc = net_.serving_bs(ue);
  ASSERT_TRUE(loc);
  EXPECT_EQ(*loc, 1u);
}

}  // namespace
}  // namespace softcell
