// Whole-system integration sweep: the synthetic LTE workload generator
// drives the full SoftCell network through the discrete-event queue --
// UE arrivals, handoffs and flow starts interleaved -- while the test
// checks the global invariants the paper's architecture promises:
//
//   * every admitted flow is deliverable in both directions at all times;
//   * every packet of a connection traverses the same middlebox instances
//     (policy consistency under unplanned mobility);
//   * the gateway's fabric state never grows with flows;
//   * control-plane load stays hierarchical (agents absorb most flow
//     events; controller involvement bounded by clauses x base stations).
#include <gtest/gtest.h>

#include <map>

#include "sim/event_queue.hpp"
#include "sim/network.hpp"
#include "workload/lte_trace.hpp"

namespace softcell {
namespace {

TEST(Integration, TraceDrivenDayOnSmallNetwork) {
  SoftCellConfig config;
  config.topo = {.k = 4, .seed = 51};
  SoftCellNetwork net(config, make_table1_policy());
  const std::uint32_t num_bs = net.topology().num_base_stations();

  LteTraceGenerator gen({.seed = 99});
  LteTraceGenerator::ScaledScenario scenario;
  scenario.num_ues = 40;
  scenario.num_bs = num_bs;
  scenario.duration_s = 120.0;
  scenario.flow_rate_per_ue_s = 0.1;
  scenario.handoff_rate_per_ue_s = 0.02;

  EventQueue queue;
  struct UeState {
    UeId id{};
    std::vector<std::pair<SoftCellNetwork::FlowHandle, std::vector<NodeId>>>
        flows;
  };
  std::map<std::uint32_t, UeState> ues;
  std::vector<MobilityManager::HandoffTicket> tickets;
  std::uint64_t flows_ok = 0, checks = 0;
  Ipv4Addr next_server = 0x08000001u;

  gen.generate_events(scenario, [&](const LteTraceGenerator::Event& e) {
    queue.at(e.t, [&, e] {
      switch (e.kind) {
        case LteTraceGenerator::Event::Kind::kUeArrival: {
          SubscriberProfile p;
          p.plan = e.ue % 2 == 0 ? BillingPlan::kSilver : BillingPlan::kGold;
          UeState st;
          st.id = net.add_subscriber(p);
          net.attach(st.id, e.bs);
          ues.emplace(e.ue, std::move(st));
          break;
        }
        case LteTraceGenerator::Event::Kind::kHandoff: {
          auto& st = ues.at(e.ue);
          if (net.serving_bs(st.id) == e.bs) break;
          tickets.push_back(net.handoff(st.id, e.bs));
          break;
        }
        case LteTraceGenerator::Event::Kind::kFlowStart: {
          auto& st = ues.at(e.ue);
          const std::uint16_t port = (e.ue % 3 == 0) ? 1935 : 80;
          auto flow = net.open_flow(st.id, next_server++, port);
          const auto d = net.send_uplink(flow, TcpFlag::kSyn);
          ASSERT_TRUE(d.delivered) << d.drop_reason;
          ++flows_ok;
          st.flows.emplace_back(flow, d.middlebox_sequence);
          // Exercise every live flow of this UE in both directions and
          // check policy consistency.
          for (auto& [h, mbs] : st.flows) {
            const auto up = net.send_uplink(h);
            ASSERT_TRUE(up.delivered) << up.drop_reason;
            ASSERT_EQ(up.middlebox_sequence, mbs);
            const auto down = net.send_downlink(h);
            ASSERT_TRUE(down.delivered) << down.drop_reason;
            ++checks;
          }
          break;
        }
      }
    });
  });
  queue.run();

  EXPECT_GT(flows_ok, 100u);
  EXPECT_GT(checks, flows_ok);

  // Dumb gateway invariant: fabric state at the gateway is bounded by
  // policies, not flows.
  const auto gw_rules =
      net.controller().engine().table(net.topology().gateway()).rule_count();
  EXPECT_LT(gw_rules, 64u);

  // Hierarchical control plane: the controller performed at most one path
  // install per (clause, touched base station); agents absorbed the rest.
  std::uint64_t hits = 0, misses = 0;
  for (std::uint32_t bs = 0; bs < num_bs; ++bs) {
    hits += net.agent(bs).cache_hits();
    misses += net.agent(bs).cache_misses();
  }
  EXPECT_EQ(hits + misses, flows_ok);
  EXPECT_LE(net.controller().path_installs(), misses);

  // Tear down every mobility anchor; the network drains cleanly.
  for (const auto& t : tickets) net.complete_handoff(t);
}

TEST(Integration, ChurnWithDetachAndReattach) {
  SoftCellConfig config;
  config.topo = {.k = 2, .seed = 61};
  SoftCellNetwork net(config, make_table1_policy());
  SubscriberProfile p;
  p.plan = BillingPlan::kSilver;

  for (int round = 0; round < 8; ++round) {
    std::vector<std::pair<UeId, SoftCellNetwork::FlowHandle>> live;
    for (std::uint32_t bs = 0; bs < net.topology().num_base_stations();
         bs += 4) {
      const UeId ue = net.add_subscriber(p);
      net.attach(ue, bs);
      auto flow = net.open_flow(ue, 0x08080808u + round, 80);
      ASSERT_TRUE(net.send_uplink(flow, TcpFlag::kSyn).delivered);
      live.emplace_back(ue, flow);
    }
    const auto access0 = net.access(0).flows().size();
    EXPECT_GT(access0, 0u);
    for (auto& [ue, flow] : live) {
      ASSERT_TRUE(net.send_downlink(flow).delivered);
      net.detach(ue);
      EXPECT_FALSE(net.send_uplink(flow).delivered);  // gone after detach
    }
    EXPECT_EQ(net.access(0).flows().size(), 0u);  // microflows cleaned up
  }
}

}  // namespace
}  // namespace softcell
