// The legacy EPC baseline (GTP bearers to a centralized P-GW).
#include <gtest/gtest.h>

#include "legacy/epc.hpp"

namespace softcell {
namespace {

class LegacyTest : public ::testing::Test {
 protected:
  LegacyTest() : topo_({.k = 4, .seed = 1}), epc_(topo_) {}
  CellularTopology topo_;
  legacy::LegacyEpc epc_;
};

TEST_F(LegacyTest, BearerLifecycle) {
  const auto b = epc_.attach(UeId(1), 5);
  EXPECT_EQ(b.bs, 5u);
  EXPECT_NE(b.teid, 0u);
  EXPECT_EQ(epc_.pgw_bearer_contexts(), 1u);
  EXPECT_THROW(epc_.attach(UeId(1), 5), std::invalid_argument);
  epc_.detach(UeId(1));
  EXPECT_EQ(epc_.pgw_bearer_contexts(), 0u);
  EXPECT_THROW(epc_.detach(UeId(1)), std::invalid_argument);
}

TEST_F(LegacyTest, DistinctTeids) {
  const auto a = epc_.attach(UeId(1), 0);
  const auto b = epc_.attach(UeId(2), 0);
  EXPECT_NE(a.teid, b.teid);
}

TEST_F(LegacyTest, InternetPathGoesViaPgw) {
  (void)epc_.attach(UeId(1), 0);
  const auto m = epc_.internet_path(UeId(1));
  EXPECT_TRUE(m.via_pgw);
  EXPECT_GE(m.hops, 4u);  // ring + agg + core + exit at minimum
  EXPECT_THROW((void)epc_.internet_path(UeId(9)), std::invalid_argument);
}

TEST_F(LegacyTest, M2mAlwaysHairpins) {
  (void)epc_.attach(UeId(1), 0);
  (void)epc_.attach(UeId(2), 1);  // ring neighbors!
  const auto m = epc_.m2m_path(UeId(1), UeId(2));
  EXPECT_TRUE(m.via_pgw);
  // Two adjacent base stations still pay two full trips to the gateway.
  EXPECT_GE(m.hops, 2 * epc_.internet_path(UeId(1)).hops - 3);
}

TEST_F(LegacyTest, HandoffReanchorsBearer) {
  (void)epc_.attach(UeId(1), 0);
  const auto before = epc_.internet_path(UeId(1)).hops;
  epc_.handoff(UeId(1), 4);  // deeper in the ring: longer tunnel
  EXPECT_GT(epc_.internet_path(UeId(1)).hops, before);
  EXPECT_THROW(epc_.handoff(UeId(9), 1), std::invalid_argument);
}

}  // namespace
}  // namespace softcell
