#!/usr/bin/env python3
"""Tests for tools/softcell_lint.py (softcell-verify Part B).

Two halves, mirroring the linter's contract:
  * every rule FIRES on its known-bad fixture in tools/lint_fixtures/
    (so a regression that silently disables a rule is caught), and
  * the linter stays SILENT on src/ (so the tree keeps the invariants and
    the tier-1 `static` stage keeps passing).

Pure stdlib (unittest + subprocess); registered with ctest as
`lint.fixtures_and_src`.
"""

import json
import subprocess
import sys
import tempfile
import unittest
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
LINT = REPO / "tools" / "softcell_lint.py"
FIXTURES = REPO / "tools" / "lint_fixtures"


def run_lint(*args):
    return subprocess.run(
        [sys.executable, str(LINT), *args],
        capture_output=True, text=True, cwd=REPO)


class FixtureCorpus(unittest.TestCase):
    """Each rule must fire on its fixture, at the expected locations."""

    @classmethod
    def setUpClass(cls):
        with tempfile.TemporaryDirectory() as tmp:
            report = Path(tmp) / "report.json"
            cls.proc = run_lint(str(FIXTURES), "--report", str(report),
                                "--suppressions", "/dev/null")
            cls.report = json.loads(report.read_text())
        cls.findings = cls.report["findings"]
        cls.by_rule = {}
        for f in cls.findings:
            cls.by_rule.setdefault(f["rule"], []).append(f)

    def test_exit_code_signals_findings(self):
        self.assertEqual(self.proc.returncode, 1, self.proc.stderr)

    def test_report_is_machine_readable(self):
        self.assertEqual(self.report["version"], 2)
        self.assertEqual(self.report["files_scanned"], 11)
        self.assertEqual(self.report["stale_suppressions"], [])
        for f in self.findings:
            for key in ("rule", "path", "line", "message", "snippet"):
                self.assertIn(key, f)

    def assert_fires(self, rule, path_part, count):
        hits = [f for f in self.by_rule.get(rule, [])
                if path_part in f["path"]]
        self.assertEqual(
            len(hits), count,
            f"{rule} on {path_part}: expected {count} findings, got "
            f"{json.dumps(hits, indent=2)}")

    def test_epoch_bump_fires(self):
        # Two naked mutations; the note_tag-paired and tier controls stay
        # silent.
        self.assert_fires("epoch-bump", "dataplane_bad_epoch_bump", 2)

    def test_naked_mutex_fires(self):
        # std::mutex, std::condition_variable, std::lock_guard; the
        # comment/string controls stay silent.
        self.assert_fires("naked-mutex", "bad_naked_mutex", 3)

    def test_hotpath_blocking_fires(self):
        # Lock + sleep + unordered_map inside the region, plus the
        # never-closed region; the outside-the-region control stays silent.
        self.assert_fires("hotpath-blocking", "bad_hotpath", 4)

    def test_naked_rand_fires(self):
        # random_device, mt19937, srand, rand; 'operand' stays silent.
        self.assert_fires("naked-rand", "bad_naked_rand", 4)

    def test_iostream_write_fires(self):
        # cout, cerr, printf; the ostringstream control stays silent.
        self.assert_fires("iostream-write", "bad_iostream", 3)

    def test_metrics_direct_fires(self):
        # ++, +=, postfix --, whole-struct reset; reads, comparisons and
        # the comment/string controls stay silent.
        self.assert_fires("metrics-direct", "bad_metrics_direct", 4)

    def test_controller_construct_fires(self):
        # Stack () and {}, new, make_unique, make_shared; the reference,
        # pointer, affixed-type and string controls stay silent.
        self.assert_fires("controller-construct", "bad_controller_construct",
                          5)

    def test_cross_shard_direct_fires(self):
        # Member and accessor receivers, install / install_ue_shortcut /
        # remove; the remove_listener, lookup, comment and string controls
        # stay silent.
        self.assert_fires("cross-shard-direct", "bad_cross_shard_direct", 4)

    def test_node_map_hotpath_fires(self):
        # unordered_map/map keyed by UeId, FlowKey, LocalUeId and
        # PublicEndpoint; the slab-container, off-key, comment and string
        # controls stay silent.
        self.assert_fires("node-map-hotpath", "agent_bad_node_map_hotpath",
                          4)

    def test_raw_socket_fires(self):
        # Two socket system headers plus the five global-scope syscalls;
        # the qualified-name, member-call, comment and string controls stay
        # silent.
        self.assert_fires("raw-socket", "bad_raw_socket", 7)

    def test_stale_owner_markers_fire(self):
        # A file-wide owner marker that exempts no diagnostics is itself a
        # finding, one per marker line (metrics-owner, commit-owner,
        # slab-owner), at the marker's location.
        stale = [f for f in self.findings
                 if "stale_owner_marker" in f["path"]]
        self.assertEqual(
            sorted(f["rule"] for f in stale),
            ["cross-shard-direct", "metrics-direct", "node-map-hotpath"],
            json.dumps(stale, indent=2))
        for f in stale:
            self.assertIn("stale sc-lint marker", f["message"])

    def test_live_owner_marker_stays_silent(self):
        # src/core/engine.cpp carries metrics-owner AND mutates AggPerf:
        # the marker is load-bearing, so neither the exempted findings nor
        # a stale-marker diagnostic may surface.
        proc = run_lint(str(REPO / "src" / "core" / "engine.cpp"),
                        "--suppressions", "/dev/null")
        self.assertEqual(proc.returncode, 0,
                         f"stdout:\n{proc.stdout}\nstderr:\n{proc.stderr}")

    def test_no_cross_contamination(self):
        # No rule fires on another rule's fixture (each bad file isolates
        # one failure class).
        fixture_of = {
            "epoch-bump": "epoch_bump",
            "naked-mutex": "naked_mutex",
            "hotpath-blocking": "hotpath",
            "naked-rand": "naked_rand",
            "iostream-write": "iostream",
            "metrics-direct": "metrics_direct",
            "controller-construct": "controller_construct",
            "cross-shard-direct": "cross_shard_direct",
            "node-map-hotpath": "node_map_hotpath",
            "raw-socket": "raw_socket",
        }
        for f in self.findings:
            if "stale sc-lint marker" in f["message"]:
                # Stale-marker diagnostics reuse the exempted rule's name
                # and live in the dedicated stale-marker fixture.
                self.assertIn("stale_owner_marker", Path(f["path"]).stem)
                continue
            self.assertIn(
                fixture_of[f["rule"]],
                Path(f["path"]).stem,
                f"unexpected {f['rule']} finding in {f['path']}")


class SourceTreeClean(unittest.TestCase):
    """src/ must lint clean -- the same invocation tier1.sh runs."""

    def test_src_is_clean(self):
        proc = run_lint(str(REPO / "src"))
        self.assertEqual(proc.returncode, 0,
                         f"stdout:\n{proc.stdout}\nstderr:\n{proc.stderr}")

    def test_suppression_file_is_well_formed(self):
        # Malformed or justification-free entries must hard-fail (exit 2),
        # so the committed file is validated by loading it.
        sup = REPO / "tools" / "lint_suppressions.txt"
        self.assertTrue(sup.exists(), "suppression file missing")
        proc = run_lint(str(REPO / "src"), "--suppressions", str(sup))
        self.assertIn(proc.returncode, (0, 1), proc.stderr)

    def test_malformed_suppression_rejected(self):
        with tempfile.TemporaryDirectory() as tmp:
            bad = Path(tmp) / "sup.txt"
            bad.write_text("naked-mutex src/foo.cpp:10\n")  # no justification
            proc = run_lint(str(REPO / "src"), "--suppressions", str(bad))
            self.assertEqual(proc.returncode, 2, proc.stderr)

    def test_suppression_actually_suppresses(self):
        fixture = FIXTURES / "bad_iostream.cpp"
        with tempfile.TemporaryDirectory() as tmp:
            # Reproduce the three findings, suppress them all, expect clean.
            report = Path(tmp) / "r.json"
            run_lint(str(fixture), "--report", str(report),
                     "--suppressions", "/dev/null")
            findings = json.loads(report.read_text())["findings"]
            self.assertEqual(len(findings), 3)
            sup = Path(tmp) / "sup.txt"
            sup.write_text("".join(
                f"{f['rule']} {f['path']}:{f['line']} fixture exercised by "
                "test_lint.py\n" for f in findings))
            proc = run_lint(str(fixture), "--suppressions", str(sup))
            self.assertEqual(proc.returncode, 0, proc.stdout)

    def test_stale_suppression_fails(self):
        # An entry whose target file was scanned but which matches no
        # diagnostic is a hard failure, not a note.
        fixture = FIXTURES / "bad_iostream.cpp"
        with tempfile.TemporaryDirectory() as tmp:
            report = Path(tmp) / "r.json"
            run_lint(str(fixture), "--report", str(report),
                     "--suppressions", "/dev/null")
            findings = json.loads(report.read_text())["findings"]
            sup = Path(tmp) / "sup.txt"
            sup.write_text("".join(
                f"{f['rule']} {f['path']}:{f['line']} fixture exercised by "
                "test_lint.py\n" for f in findings) +
                f"iostream-write {findings[0]['path']}:9999 gone\n")
            proc = run_lint(str(fixture), "--report", str(report),
                            "--suppressions", str(sup))
            self.assertEqual(proc.returncode, 1, proc.stdout)
            self.assertIn("stale-suppression:", proc.stdout)
            stale = json.loads(report.read_text())["stale_suppressions"]
            self.assertEqual(stale, [{"rule": "iostream-write",
                                      "path": findings[0]["path"],
                                      "line": 9999}])

    def test_out_of_scope_suppression_tolerated(self):
        # Entries pointing at files NOT scanned in this invocation are left
        # alone -- single-file runs must not false-fail on the rest of the
        # committed table.
        fixture = FIXTURES / "bad_iostream.cpp"
        with tempfile.TemporaryDirectory() as tmp:
            report = Path(tmp) / "r.json"
            run_lint(str(fixture), "--report", str(report),
                     "--suppressions", "/dev/null")
            findings = json.loads(report.read_text())["findings"]
            sup = Path(tmp) / "sup.txt"
            sup.write_text("".join(
                f"{f['rule']} {f['path']}:{f['line']} fixture exercised by "
                "test_lint.py\n" for f in findings) +
                "naked-mutex src/not/scanned.cpp:10 other file\n")
            proc = run_lint(str(fixture), "--suppressions", str(sup))
            self.assertEqual(proc.returncode, 0,
                             f"stdout:\n{proc.stdout}\nstderr:\n{proc.stderr}")


if __name__ == "__main__":
    unittest.main(verbosity=2)
