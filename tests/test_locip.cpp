#include "packet/locip.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace softcell {
namespace {

TEST(AddressPlan, RejectsBadBitSplit) {
  EXPECT_THROW(AddressPlan(Prefix(0x0A000000u, 8), 10, 10),
               std::invalid_argument);
  EXPECT_THROW(AddressPlan(Prefix(0x0A000000u, 8), 24, 0),
               std::invalid_argument);
}

TEST(AddressPlan, DefaultPlanShape) {
  const auto plan = AddressPlan::default_plan();
  EXPECT_EQ(plan.max_base_stations(), 4096u);
  EXPECT_EQ(plan.max_ues_per_bs(), 4096u);
  EXPECT_EQ(plan.carrier().to_string(), "10.0.0.0/8");
}

TEST(AddressPlan, EncodeDecodeRoundTrip) {
  const auto plan = AddressPlan::default_plan();
  const auto addr = plan.encode(7, LocalUeId(10));
  const auto fields = plan.decode(addr);
  ASSERT_TRUE(fields);
  EXPECT_EQ(fields->bs_index, 7u);
  EXPECT_EQ(fields->ue.value(), 10u);
}

TEST(AddressPlan, DecodeRejectsForeignAddress) {
  const auto plan = AddressPlan::default_plan();
  EXPECT_FALSE(plan.decode(0x08080808u));  // not in 10/8
}

TEST(AddressPlan, BsPrefixContainsAllItsUes) {
  const auto plan = AddressPlan::default_plan();
  const Prefix p = plan.bs_prefix(42);
  EXPECT_EQ(p.len(), 8 + 12);
  EXPECT_TRUE(p.contains(plan.encode(42, LocalUeId(0))));
  EXPECT_TRUE(p.contains(plan.encode(42, LocalUeId(4095))));
  EXPECT_FALSE(p.contains(plan.encode(43, LocalUeId(0))));
}

TEST(AddressPlan, AdjacentBsPrefixesAreContiguousWhenAligned) {
  const auto plan = AddressPlan::default_plan();
  // Even/odd neighbors are siblings -- the property location aggregation
  // relies on.
  EXPECT_TRUE(Prefix::contiguous(plan.bs_prefix(0), plan.bs_prefix(1)));
  EXPECT_TRUE(Prefix::contiguous(plan.bs_prefix(6), plan.bs_prefix(7)));
  EXPECT_FALSE(Prefix::contiguous(plan.bs_prefix(1), plan.bs_prefix(2)));
}

TEST(AddressPlan, RangeChecks) {
  const auto plan = AddressPlan::default_plan();
  EXPECT_THROW((void)plan.bs_prefix(4096), std::out_of_range);
  EXPECT_THROW((void)plan.encode(0, LocalUeId(4096)), std::out_of_range);
}

TEST(AddressPlanProperty, RoundTripEverywhere) {
  const AddressPlan plan(Prefix(0x0A000000u, 6), 16, 10);
  Rng rng(3);
  for (int i = 0; i < 5000; ++i) {
    const auto bs = static_cast<std::uint32_t>(
        rng.next_below(plan.max_base_stations()));
    const LocalUeId ue(
        static_cast<std::uint16_t>(rng.next_below(plan.max_ues_per_bs())));
    const auto addr = plan.encode(bs, ue);
    const auto f = plan.decode(addr);
    ASSERT_TRUE(f);
    EXPECT_EQ(f->bs_index, bs);
    EXPECT_EQ(f->ue, ue);
    EXPECT_TRUE(plan.bs_prefix(bs).contains(addr));
  }
}

TEST(PortCodec, RoundTrip) {
  const PortCodec codec(10);
  EXPECT_EQ(codec.max_tags(), 1024);
  EXPECT_EQ(codec.max_flows_per_ue(), 64);
  const auto port = codec.encode(PolicyTag(513), 37);
  EXPECT_EQ(codec.tag_of(port), PolicyTag(513));
  EXPECT_EQ(codec.flow_slot_of(port), 37);
}

TEST(PortCodec, RejectsOutOfRange) {
  const PortCodec codec(10);
  EXPECT_THROW((void)codec.encode(PolicyTag(1024), 0), std::out_of_range);
  EXPECT_THROW((void)codec.encode(PolicyTag(0), 64), std::out_of_range);
  EXPECT_THROW(PortCodec(0), std::invalid_argument);
  EXPECT_THROW(PortCodec(16), std::invalid_argument);
}

TEST(PortCodecProperty, AllTagBitWidths) {
  Rng rng(11);
  for (std::uint8_t bits = 1; bits <= 15; ++bits) {
    const PortCodec codec(bits);
    for (int i = 0; i < 200; ++i) {
      const PolicyTag tag(
          static_cast<std::uint16_t>(rng.next_below(codec.max_tags())));
      const auto slot = static_cast<std::uint16_t>(
          rng.next_below(codec.max_flows_per_ue()));
      const auto port = codec.encode(tag, slot);
      EXPECT_EQ(codec.tag_of(port), tag);
      EXPECT_EQ(codec.flow_slot_of(port), slot);
    }
  }
}

}  // namespace
}  // namespace softcell
