// softcell::mem -- generation-checked slab storage and the dual-layout
// SlabMap: stale handles miss instead of dereferencing a slot's new tenant,
// free-list reuse keeps storage dense, iteration stays index-ordered under
// churn, and the two SlabMap layouts are observationally identical (pinned
// end-to-end by the differential chaos digests at the bottom).
#include "mem/slab.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "chaos/harness.hpp"
#include "mem/slab_map.hpp"

namespace softcell {
namespace {

using mem::Handle;
using mem::ScopedSlabLayout;
using mem::Slab;
using mem::SlabMap;

TEST(SlabTest, NullHandleNeverResolves) {
  Slab<int> s;
  EXPECT_FALSE(Handle{});
  EXPECT_EQ(s.get(Handle{}), nullptr);
  EXPECT_FALSE(s.valid(Handle{}));
}

TEST(SlabTest, StaleHandleIsCheckableMiss) {
  Slab<std::string> s;
  const Handle h = s.emplace("tenant-one");
  ASSERT_NE(s.get(h), nullptr);
  EXPECT_EQ(*s.get(h), "tenant-one");

  ASSERT_TRUE(s.erase(h));
  // The use-after-free becomes a miss, not the new tenant.
  EXPECT_EQ(s.get(h), nullptr);
  EXPECT_FALSE(s.valid(h));
  EXPECT_FALSE(s.erase(h));  // double-free is a no-op

  const Handle h2 = s.emplace("tenant-two");
  EXPECT_EQ(h2.index, h.index);  // storage reused...
  EXPECT_NE(h2.generation, h.generation);
  EXPECT_EQ(s.get(h), nullptr);  // ...but the old handle still misses
  EXPECT_EQ(*s.get(h2), "tenant-two");
}

TEST(SlabTest, FreeListReusesSlotsLifo) {
  Slab<int> s;
  const Handle a = s.emplace(1);
  const Handle b = s.emplace(2);
  const Handle c = s.emplace(3);
  EXPECT_EQ(s.slot_count(), 3u);

  s.erase(a);
  s.erase(c);
  // LIFO: the most recently freed slot is reused first.
  const Handle d = s.emplace(4);
  EXPECT_EQ(d.index, c.index);
  const Handle e = s.emplace(5);
  EXPECT_EQ(e.index, a.index);
  // No growth happened: churn stayed within the existing arena.
  EXPECT_EQ(s.slot_count(), 3u);
  EXPECT_EQ(s.size(), 3u);
  EXPECT_EQ(*s.get(b), 2);
}

TEST(SlabTest, IterationVisitsIndexOrderUnderChurn) {
  Slab<int> s;
  std::vector<Handle> handles;
  for (int i = 0; i < 10; ++i) handles.push_back(s.emplace(i));
  // Erase a scattered subset; survivors must still come out in index order.
  s.erase(handles[1]);
  s.erase(handles[4]);
  s.erase(handles[7]);
  std::vector<int> seen;
  s.for_each([&](Handle, int v) { seen.push_back(v); });
  EXPECT_EQ(seen, (std::vector<int>{0, 2, 3, 5, 6, 8, 9}));

  // Refill: reused slots rejoin iteration at their old positions, so the
  // order depends only on slot indexes, never on insertion recency.
  s.emplace(40);  // reuses slot 7 (LIFO)
  s.emplace(41);  // reuses slot 4
  seen.clear();
  s.for_each([&](Handle, int v) { seen.push_back(v); });
  EXPECT_EQ(seen, (std::vector<int>{0, 2, 3, 41, 5, 6, 40, 8, 9}));
}

TEST(SlabTest, CopyPreservesHandleResolution) {
  Slab<int> s;
  const Handle a = s.emplace(10);
  const Handle b = s.emplace(20);
  s.erase(a);
  const Slab<int> copy = s;
  // Handles taken from the original resolve identically in the copy,
  // including staleness (ControlStore replicates SlowStates by copy).
  EXPECT_EQ(copy.get(a), nullptr);
  ASSERT_NE(copy.get(b), nullptr);
  EXPECT_EQ(*copy.get(b), 20);
  const Handle c = s.emplace(30);  // reuses a's slot in the original...
  EXPECT_EQ(c.index, a.index);
  EXPECT_EQ(copy.get(c), nullptr);  // ...without affecting the copy
}

TEST(SlabTest, BytesResidentTracksArenaGrowth) {
  Slab<std::uint64_t> s;
  const std::size_t empty = s.bytes_resident();
  EXPECT_GE(empty, sizeof(s));
  std::vector<Handle> hs;
  for (int i = 0; i < 1000; ++i) hs.push_back(s.emplace(i));
  const std::size_t grown = s.bytes_resident();
  // At least the payload plus one generation word per slot.
  EXPECT_GE(grown, empty + 1000 * (sizeof(std::uint64_t) + 4));
  // Freeing does not shrink the arena (slots await reuse).
  for (const Handle h : hs) s.erase(h);
  EXPECT_GE(s.bytes_resident(), grown);
  EXPECT_EQ(s.size(), 0u);
}

// --- SlabMap: both layouts expose the same associative contract ------------

class SlabMapLayoutTest : public ::testing::TestWithParam<bool> {};

TEST_P(SlabMapLayoutTest, BasicContract) {
  ScopedSlabLayout layout(GetParam());
  SlabMap<int, std::string> m;
  EXPECT_EQ(m.slab_layout(), GetParam());
  EXPECT_TRUE(m.empty());

  auto [v, fresh] = m.try_emplace(1, "one");
  EXPECT_TRUE(fresh);
  EXPECT_EQ(*v, "one");
  auto [v2, fresh2] = m.try_emplace(1, "uno");
  EXPECT_FALSE(fresh2);
  EXPECT_EQ(*v2, "one");
  m[2] = "two";
  EXPECT_EQ(m.size(), 2u);
  EXPECT_TRUE(m.contains(2));
  EXPECT_EQ(m.at(2), "two");
  EXPECT_EQ(m.find(3), nullptr);
  EXPECT_EQ(m.erase(3), 0u);
  EXPECT_EQ(m.erase(1), 1u);
  EXPECT_FALSE(m.contains(1));

  int visited = 0;
  m.for_each([&](const int& k, const std::string& s) {
    ++visited;
    EXPECT_EQ(k, 2);
    EXPECT_EQ(s, "two");
  });
  EXPECT_EQ(visited, 1);
  EXPECT_GT(m.bytes_resident(), 0u);
}

TEST_P(SlabMapLayoutTest, ValueAddressesStableAcrossUnrelatedChurn) {
  ScopedSlabLayout layout(GetParam());
  SlabMap<int, int> m;
  m[7] = 70;
  int* p = m.find(7);
  ASSERT_NE(p, nullptr);
  // Unrelated inserts and erases must not move the value (the controller
  // holds a V* across engine calls; std::unordered_map gave this for free).
  for (int i = 100; i < 400; ++i) m[i] = i;
  for (int i = 100; i < 250; ++i) m.erase(i);
  EXPECT_EQ(m.find(7), p);
  EXPECT_EQ(*p, 70);
}

INSTANTIATE_TEST_SUITE_P(BothLayouts, SlabMapLayoutTest,
                         ::testing::Values(true, false),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "slab" : "node";
                         });

// --- differential digests ---------------------------------------------------
// The whole point of the hatch: replaying the same chaos scenario on both
// layouts must produce bit-identical event digests (the slab migration is a
// storage change, not a behavior change).

chaos::ChaosOptions corpus_options(std::uint64_t seed) {
  chaos::ChaosOptions opt;
  if (seed > 170 && seed <= 190) opt.runtime_workers = 2;
  if (seed > 190) opt.install_shortcuts = false;
  return opt;
}

TEST(SlabDifferential, ChaosDigestsMatchNodeLayout) {
  // SOFTCELL_CHAOS_SEEDS shrinks the corpus for expensive reruns (tier1.sh
  // uses it under ASan/TSan); unset means a 25-seed spread across the
  // corpus bands (default shape, runtime workers, no shortcuts).
  std::size_t n = 25;
  if (const char* env = std::getenv("SOFTCELL_CHAOS_SEEDS")) {
    const auto parsed = std::strtoull(env, nullptr, 10);
    if (parsed > 0) n = static_cast<std::size_t>(parsed);
  }
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::uint64_t seed = 1 + (i * 199) / (n > 1 ? n - 1 : 1);
    const auto sc = chaos::Scenario::generate(seed);
    std::uint64_t slab_digest = 0, node_digest = 0;
    {
      ScopedSlabLayout layout(true);
      const auto r = chaos::run_scenario(sc, corpus_options(seed));
      ASSERT_TRUE(r.ok) << "slab layout, seed " << seed;
      slab_digest = r.digest;
    }
    {
      ScopedSlabLayout layout(false);
      const auto r = chaos::run_scenario(sc, corpus_options(seed));
      ASSERT_TRUE(r.ok) << "node layout, seed " << seed;
      node_digest = r.digest;
    }
    ASSERT_EQ(slab_digest, node_digest) << "seed " << seed;
  }
}

}  // namespace
}  // namespace softcell
