// Access-switch microflow tables and M2M path expansion units.
#include <gtest/gtest.h>

#include "agent/access_switch.hpp"
#include "core/engine.hpp"
#include "core/path.hpp"
#include "dataplane/microflow.hpp"
#include "topo/cellular.hpp"
#include "topo/routing.hpp"

namespace softcell {
namespace {

FlowKey key(std::uint16_t sport) {
  return FlowKey{0x64400001u, 0x08080808u, sport, 80, IpProto::kTcp};
}

TEST(MicroflowTable, InstallLookupRemove) {
  MicroflowTable t;
  MicroflowAction a;
  a.set_src_ip = 0x0A000001u;
  a.out_to = NodeId(3);
  t.install(key(1000), a);
  ASSERT_NE(t.lookup(key(1000)), nullptr);
  EXPECT_EQ(*t.lookup(key(1000)), a);
  EXPECT_EQ(t.lookup(key(1001)), nullptr);
  EXPECT_TRUE(t.remove(key(1000)));
  EXPECT_FALSE(t.remove(key(1000)));
  EXPECT_EQ(t.size(), 0u);
}

TEST(MicroflowTable, ReinstallOverwrites) {
  MicroflowTable t;
  MicroflowAction a;
  a.out_to = NodeId(3);
  t.install(key(1), a);
  a.out_to = NodeId(4);
  t.install(key(1), a);
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.lookup(key(1))->out_to, NodeId(4));
}

TEST(MicroflowTable, ScalesToPaperMicroflowCounts) {
  // Section 4.1: ~10,000 microflows per access switch is the design point.
  MicroflowTable t;
  MicroflowAction a;
  a.out_to = NodeId(1);
  for (std::uint32_t i = 0; i < 10'000; ++i) {
    FlowKey k = key(static_cast<std::uint16_t>(i % 60000));
    k.src_ip = 0x64400000u + i;
    t.install(k, a);
  }
  EXPECT_EQ(t.size(), 10'000u);
  FlowKey probe = key(5000 % 60000);
  probe.src_ip = 0x64400000u + 5000;
  EXPECT_NE(t.lookup(probe), nullptr);
}

TEST(AccessSwitch, TunnelTable) {
  AccessSwitch sw(NodeId(9), 4, NodeId(2));
  EXPECT_EQ(sw.node(), NodeId(9));
  EXPECT_EQ(sw.bs_index(), 4u);
  EXPECT_EQ(sw.uplink_next(), NodeId(2));
  EXPECT_FALSE(sw.tunnel_for(0x0A000001u));
  sw.add_tunnel(0x0A000001u, NodeId(77));
  ASSERT_TRUE(sw.tunnel_for(0x0A000001u));
  EXPECT_EQ(*sw.tunnel_for(0x0A000001u), NodeId(77));
  EXPECT_EQ(sw.tunnel_count(), 1u);
  sw.remove_tunnel(0x0A000001u);
  EXPECT_EQ(sw.tunnel_count(), 0u);
}

class M2mPathTest : public ::testing::Test {
 protected:
  M2mPathTest() : topo_({.k = 4, .seed = 2}), routes_(topo_.graph()) {}
  CellularTopology topo_;
  RoutingOracle routes_;
};

TEST_F(M2mPathTest, AvoidsTheGateway) {
  const auto p = expand_m2m_path(topo_.graph(), routes_,
                                 topo_.access_switch(0),
                                 std::vector<NodeId>{}, topo_.access_switch(90));
  for (const auto& h : p.fabric) {
    EXPECT_NE(h.sw, topo_.gateway());
    EXPECT_NE(h.out_to, topo_.internet());
  }
  EXPECT_FALSE(p.fabric.empty());
}

TEST_F(M2mPathTest, TraversesRequestedMiddleboxes) {
  const auto& mb = topo_.core_instance(1, 0);
  const auto p = expand_m2m_path(topo_.graph(), routes_,
                                 topo_.access_switch(3),
                                 std::vector<NodeId>{mb.node},
                                 topo_.access_switch(120));
  int detours = 0;
  for (const auto& h : p.fabric)
    if (h.out_to == mb.node) ++detours;
  EXPECT_EQ(detours, 1);
}

TEST_F(M2mPathTest, EndsAtThePeerAccessSwitch) {
  const auto p = expand_m2m_path(topo_.graph(), routes_,
                                 topo_.access_switch(0),
                                 std::vector<NodeId>{}, topo_.access_switch(14));
  const auto& last =
      p.access_tail.empty() ? p.fabric.back() : p.access_tail.back();
  EXPECT_EQ(last.out_to, topo_.access_switch(14));
}

TEST_F(M2mPathTest, RejectsSameSwitch) {
  EXPECT_THROW(expand_m2m_path(topo_.graph(), routes_, topo_.access_switch(0),
                               std::vector<NodeId>{}, topo_.access_switch(0)),
               std::invalid_argument);
}

TEST_F(M2mPathTest, RingHopsGoThroughTheTagMachinery) {
  // Every hop of an M2M path -- ring transit included -- is planned by the
  // engine: intra-ring paths can cross the same access switch on their
  // outbound and delivery legs, which only the tag/in-port machinery can
  // disambiguate (the location tier is one-next-hop-per-prefix).
  const auto p = expand_m2m_path(topo_.graph(), routes_,
                                 topo_.access_switch(5),
                                 std::vector<NodeId>{}, topo_.access_switch(90));
  EXPECT_TRUE(p.access_tail.empty());
  bool saw_ring_hop = false;
  for (const auto& h : p.fabric)
    saw_ring_hop |= topo_.graph().kind(h.sw) == NodeKind::kAccessSwitch;
  EXPECT_TRUE(saw_ring_hop);
}

TEST_F(M2mPathTest, IntraRingWithMiddleboxInstallsAndWalks) {
  // Source and destination share a ring; the firewall forces the path out
  // to the aggregation layer and back, crossing ring switches twice.
  AggregationEngine eng(topo_.graph(), {});
  const auto& mb = topo_.pod_instance(0, 0);
  const auto p = expand_m2m_path(topo_.graph(), routes_,
                                 topo_.access_switch(5),
                                 std::vector<NodeId>{mb.node},
                                 topo_.access_switch(2));
  const auto r = eng.install(p, /*dst bs=*/2, topo_.bs_prefix(2));
  const auto w = eng.walk(p, r.tag, topo_.bs_prefix(2));
  EXPECT_TRUE(w.ok) << w.error;
}

}  // namespace
}  // namespace softcell
