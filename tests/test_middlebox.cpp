#include "mbox/middlebox.hpp"

#include <gtest/gtest.h>

namespace softcell {
namespace {

Packet up_packet(FlowKey key, TcpFlag flag = TcpFlag::kNone) {
  Packet p;
  p.key = key;
  p.flag = flag;
  p.payload_bytes = 1000;
  p.uplink = true;
  return p;
}

Packet down_packet(FlowKey up_key, TcpFlag flag = TcpFlag::kNone) {
  Packet p;
  p.key = up_key.reversed();
  p.flag = flag;
  p.payload_bytes = 1000;
  p.uplink = false;
  return p;
}

const FlowKey kFlow{0x0A000001u, 0x08080808u, 1234, 80, IpProto::kTcp};

TEST(StatefulFirewall, UplinkSynOpensConnection) {
  StatefulFirewall fw;
  auto syn = up_packet(kFlow, TcpFlag::kSyn);
  EXPECT_TRUE(fw.process(syn));
  EXPECT_EQ(fw.open_connections(), 1u);
  auto data = up_packet(kFlow);
  EXPECT_TRUE(fw.process(data));
  auto reply = down_packet(kFlow);
  EXPECT_TRUE(fw.process(reply));
}

TEST(StatefulFirewall, UnsolicitedInboundDropped) {
  StatefulFirewall fw;
  auto reply = down_packet(kFlow);
  EXPECT_FALSE(fw.process(reply));
  EXPECT_EQ(fw.dropped(), 1u);
}

TEST(StatefulFirewall, DownlinkSynCannotOpen) {
  StatefulFirewall fw;
  auto syn = down_packet(kFlow, TcpFlag::kSyn);
  EXPECT_FALSE(fw.process(syn));
}

TEST(StatefulFirewall, MidConnectionPacketsAtWrongInstanceDropped) {
  // The property that makes policy consistency matter: a second instance
  // never saw the SYN, so it drops the connection's packets.
  StatefulFirewall a, b;
  auto syn = up_packet(kFlow, TcpFlag::kSyn);
  EXPECT_TRUE(a.process(syn));
  auto data = up_packet(kFlow);
  EXPECT_TRUE(a.process(data));
  EXPECT_FALSE(b.process(data));
}

TEST(StatefulFirewall, FinClosesConnection) {
  StatefulFirewall fw;
  auto syn = up_packet(kFlow, TcpFlag::kSyn);
  auto fin = up_packet(kFlow, TcpFlag::kFin);
  auto data = up_packet(kFlow);
  EXPECT_TRUE(fw.process(syn));
  EXPECT_TRUE(fw.process(fin));
  EXPECT_EQ(fw.open_connections(), 0u);
  EXPECT_FALSE(fw.process(data));
}

TEST(Transcoder, ShrinksPayload) {
  Transcoder t(0.5);
  auto p = up_packet(kFlow);
  EXPECT_TRUE(t.process(p));
  EXPECT_EQ(p.payload_bytes, 500u);
  EXPECT_EQ(t.bytes_saved(), 500u);
}

TEST(EchoCanceller, PassesAndCounts) {
  EchoCanceller e;
  auto p = up_packet(kFlow);
  EXPECT_TRUE(e.process(p));
  EXPECT_EQ(e.passed(), 1u);
}

TEST(Ids, GroupsFlowsByUeViaLocIp) {
  const auto plan = AddressPlan::default_plan();
  Ids ids(plan, 2);
  const Ipv4Addr ue_a = plan.encode(5, LocalUeId(9));
  const Ipv4Addr ue_b = plan.encode(5, LocalUeId(10));
  for (std::uint16_t port = 1000; port < 1003; ++port) {
    Packet p = up_packet({ue_a, 0x08080808u, port, 80, IpProto::kTcp});
    EXPECT_TRUE(ids.process(p));
  }
  // Third distinct flow of UE a crossed the threshold of 2.
  EXPECT_EQ(ids.alerts(), 1u);
  Packet pb = up_packet({ue_b, 0x08080808u, 1000, 80, IpProto::kTcp});
  EXPECT_TRUE(ids.process(pb));
  EXPECT_EQ(ids.alerts(), 1u);  // UE b is under its own threshold
  EXPECT_EQ(ids.tracked_ues(), 2u);
}

TEST(Ids, RepeatPacketsOfSameFlowDoNotAlert) {
  const auto plan = AddressPlan::default_plan();
  Ids ids(plan, 1);
  const Ipv4Addr ue = plan.encode(1, LocalUeId(1));
  Packet p = up_packet({ue, 0x08080808u, 1000, 80, IpProto::kTcp});
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(ids.process(p));
  EXPECT_EQ(ids.alerts(), 0u);
}

TEST(IdsDownlink, UsesDestinationLocIp) {
  const auto plan = AddressPlan::default_plan();
  Ids ids(plan, 0);
  const Ipv4Addr ue = plan.encode(2, LocalUeId(3));
  Packet p = down_packet({ue, 0x08080808u, 1000, 80, IpProto::kTcp});
  EXPECT_TRUE(ids.process(p));
  EXPECT_EQ(ids.alerts(), 1u);  // threshold 0: first flow alerts
}

TEST(MakeMiddlebox, FactoryKinds) {
  const auto plan = AddressPlan::default_plan();
  EXPECT_EQ(make_middlebox(0, plan)->kind(), "firewall");
  EXPECT_EQ(make_middlebox(1, plan)->kind(), "transcoder");
  EXPECT_EQ(make_middlebox(2, plan)->kind(), "echo-canceller");
  EXPECT_EQ(make_middlebox(3, plan)->kind(), "ids");
  EXPECT_EQ(make_middlebox(9, plan)->kind(), "generic");
}

}  // namespace
}  // namespace softcell
