// Policy consistency under mobility (paper section 5.1): in-flight flows
// keep traversing the same stateful middlebox instances after handoff, new
// flows take fresh paths, tunnels/shortcuts route old-LocIP traffic, and
// LocIP quarantine prevents address reuse during the transition.
#include "sim/network.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace softcell {
namespace {

constexpr Ipv4Addr kServer = 0x08080808u;

class MobilityTest : public ::testing::Test {
 protected:
  explicit MobilityTest(bool shortcuts = true)
      : net_(SoftCellConfig{.topo = {.k = 4, .seed = 21},
                            .mobility = {.install_shortcuts = shortcuts}},
             make_table1_policy()) {}

  UeId silver_ue(std::uint32_t bs) {
    SubscriberProfile p;
    p.plan = BillingPlan::kSilver;
    const UeId ue = net_.add_subscriber(p);
    net_.attach(ue, bs);
    return ue;
  }

  SoftCellNetwork net_;
};

TEST_F(MobilityTest, OldFlowSurvivesHandoffThroughSameFirewall) {
  const UeId ue = silver_ue(0);
  const auto flow = net_.open_flow(ue, kServer, 80);
  const auto up0 = net_.send_uplink(flow, TcpFlag::kSyn);
  ASSERT_TRUE(up0.delivered) << up0.drop_reason;

  const auto ticket = net_.handoff(ue, 1);  // ring neighbor
  EXPECT_EQ(net_.serving_bs(ue), 1u);

  // Uplink continues via copied microflow rules -- same old LocIP, so the
  // same stateful firewall instance accepts the mid-connection packets.
  const auto up1 = net_.send_uplink(flow);
  ASSERT_TRUE(up1.delivered) << up1.drop_reason;
  EXPECT_EQ(up1.middlebox_sequence, up0.middlebox_sequence);
  EXPECT_EQ(up1.final_packet.key.src_ip, up0.final_packet.key.src_ip);

  // Downlink reaches the UE at the new base station.
  const auto down = net_.send_downlink(flow);
  ASSERT_TRUE(down.delivered) << down.drop_reason;
  EXPECT_EQ(down.final_packet.key.dst_ip, flow.key.src_ip);
  (void)ticket;
}

TEST_F(MobilityTest, NewFlowAfterHandoffUsesNewLocIp) {
  const UeId ue = silver_ue(0);
  const auto old_flow = net_.open_flow(ue, kServer, 80);
  (void)net_.send_uplink(old_flow, TcpFlag::kSyn);
  const auto old_src =
      net_.send_uplink(old_flow).final_packet.key.src_ip;

  (void)net_.handoff(ue, 11);  // different cluster
  const auto new_flow = net_.open_flow(ue, kServer, 443);
  const auto up = net_.send_uplink(new_flow, TcpFlag::kSyn);
  ASSERT_TRUE(up.delivered) << up.drop_reason;
  const auto fields = net_.plan().decode(up.final_packet.key.src_ip);
  ASSERT_TRUE(fields);
  EXPECT_EQ(fields->bs_index, 11u);
  EXPECT_NE(up.final_packet.key.src_ip, old_src);
  // And its return path works too.
  ASSERT_TRUE(net_.send_downlink(new_flow).delivered);
}

TEST_F(MobilityTest, ChainedHandoffsKeepOldFlowAlive) {
  const UeId ue = silver_ue(0);
  const auto flow = net_.open_flow(ue, kServer, 80);
  const auto up0 = net_.send_uplink(flow, TcpFlag::kSyn);
  ASSERT_TRUE(up0.delivered);

  (void)net_.handoff(ue, 1);
  (void)net_.handoff(ue, 2);
  (void)net_.handoff(ue, 12);

  const auto up = net_.send_uplink(flow);
  ASSERT_TRUE(up.delivered) << up.drop_reason;
  EXPECT_EQ(up.middlebox_sequence, up0.middlebox_sequence);
  const auto down = net_.send_downlink(flow);
  ASSERT_TRUE(down.delivered) << down.drop_reason;
  EXPECT_EQ(down.final_packet.key.dst_ip, flow.key.src_ip);
}

TEST_F(MobilityTest, QuarantinePreventsLocIpReuse) {
  const UeId ue = silver_ue(0);
  const auto flow = net_.open_flow(ue, kServer, 80);
  (void)net_.send_uplink(flow, TcpFlag::kSyn);
  const auto old_locip = net_.send_uplink(flow).final_packet.key.src_ip;

  const auto ticket = net_.handoff(ue, 1);
  // New UEs at the old base station must not receive the quarantined LocIP.
  for (int i = 0; i < 3; ++i) {
    const UeId fresh = silver_ue(0);
    const auto f = net_.open_flow(fresh, kServer, 80);
    const auto d = net_.send_uplink(f, TcpFlag::kSyn);
    ASSERT_TRUE(d.delivered);
    EXPECT_NE(d.final_packet.key.src_ip, old_locip);
  }
  net_.complete_handoff(ticket);
  EXPECT_EQ(net_.agent(0).quarantined(), 0u);
}

TEST_F(MobilityTest, CompleteHandoffTearsDownAnchorState) {
  const UeId ue = silver_ue(0);
  const auto flow = net_.open_flow(ue, kServer, 80);
  (void)net_.send_uplink(flow, TcpFlag::kSyn);
  (void)net_.send_downlink(flow);

  const auto ticket = net_.handoff(ue, 1);
  EXPECT_GE(net_.access(0).tunnel_count(), 1u);
  const auto rules_during = net_.controller().engine().total_rules();
  net_.complete_handoff(ticket);
  EXPECT_EQ(net_.access(0).tunnel_count(), 0u);
  // Shortcut rules are gone.
  EXPECT_LE(net_.controller().engine().total_rules(), rules_during);
}

TEST_F(MobilityTest, HandoffToSameBsRejected) {
  const UeId ue = silver_ue(0);
  EXPECT_THROW((void)net_.handoff(ue, 0), std::invalid_argument);
}

class TriangleOnlyTest : public MobilityTest {
 protected:
  TriangleOnlyTest() : MobilityTest(/*shortcuts=*/false) {}
};

TEST_F(TriangleOnlyTest, DownlinkOldFlowTakesTunnel) {
  const UeId ue = silver_ue(0);
  const auto flow = net_.open_flow(ue, kServer, 80);
  (void)net_.send_uplink(flow, TcpFlag::kSyn);
  (void)net_.handoff(ue, 15);  // far away: triangle routing visible
  const auto down = net_.send_downlink(flow);
  ASSERT_TRUE(down.delivered) << down.drop_reason;
  EXPECT_TRUE(down.tunneled);
}

TEST_F(TriangleOnlyTest, ShortcutsAreShorterThanTriangle) {
  // Old base station deep in its ring, new base station at a ring head:
  // the triangle detour (old path all the way into the old ring, then the
  // tunnel) costs visibly more hops than the shortcut.
  const UeId ue = silver_ue(4);
  const auto flow = net_.open_flow(ue, kServer, 80);
  (void)net_.send_uplink(flow, TcpFlag::kSyn);
  (void)net_.handoff(ue, 30);
  const auto triangle = net_.send_downlink(flow);
  ASSERT_TRUE(triangle.delivered) << triangle.drop_reason;
  EXPECT_TRUE(triangle.tunneled);

  SoftCellNetwork with_shortcuts(
      SoftCellConfig{.topo = {.k = 4, .seed = 21},
                     .mobility = {.install_shortcuts = true}},
      make_table1_policy());
  SubscriberProfile p;
  p.plan = BillingPlan::kSilver;
  const UeId ue2 = with_shortcuts.add_subscriber(p);
  with_shortcuts.attach(ue2, 4);
  const auto flow2 = with_shortcuts.open_flow(ue2, kServer, 80);
  (void)with_shortcuts.send_uplink(flow2, TcpFlag::kSyn);
  const auto ticket = with_shortcuts.handoff(ue2, 30);
  const auto shortcut = with_shortcuts.send_downlink(flow2);
  ASSERT_TRUE(shortcut.delivered) << shortcut.drop_reason;
  if (!ticket.shortcuts.empty()) {
    EXPECT_FALSE(shortcut.tunneled);
    EXPECT_LT(shortcut.hops.size(), triangle.hops.size());
  }
}

// Property sweep: random moves with live flows; every packet of every
// pre-handoff connection keeps passing its stateful firewall.
TEST_F(MobilityTest, RandomWalkKeepsPolicyConsistency) {
  Rng rng(99);
  struct LiveFlow {
    SoftCellNetwork::FlowHandle handle;
    std::vector<NodeId> mbs;
  };
  std::vector<UeId> ues;
  std::vector<LiveFlow> flows;
  for (int i = 0; i < 6; ++i) {
    const auto bs =
        static_cast<std::uint32_t>(rng.next_below(net_.topology().num_base_stations()));
    const UeId ue = silver_ue(bs);
    ues.push_back(ue);
    for (std::uint16_t port : {std::uint16_t{80}, std::uint16_t{1935}}) {
      auto h = net_.open_flow(ue, kServer + static_cast<Ipv4Addr>(i), port);
      const auto d = net_.send_uplink(h, TcpFlag::kSyn);
      ASSERT_TRUE(d.delivered) << d.drop_reason;
      flows.push_back(LiveFlow{h, d.middlebox_sequence});
    }
  }
  for (int step = 0; step < 30; ++step) {
    const UeId ue = ues[rng.next_below(ues.size())];
    const auto cur = net_.serving_bs(ue);
    ASSERT_TRUE(cur);
    std::uint32_t next = *cur;
    while (next == *cur)
      next = static_cast<std::uint32_t>(
          rng.next_below(net_.topology().num_base_stations()));
    (void)net_.handoff(ue, next);
    for (const auto& f : flows) {
      const auto up = net_.send_uplink(f.handle);
      ASSERT_TRUE(up.delivered) << "step " << step << ": " << up.drop_reason;
      EXPECT_EQ(up.middlebox_sequence, f.mbs);  // same instances, same order
      const auto down = net_.send_downlink(f.handle);
      ASSERT_TRUE(down.delivered) << "step " << step << ": "
                                  << down.drop_reason;
    }
  }
}

}  // namespace
}  // namespace softcell
