// Monitoring & load balancing: data-plane rule counters, the southbound
// stats messages, and the controller's least-loaded instance placement.
#include <gtest/gtest.h>

#include "ofp/switch_agent.hpp"
#include "sim/network.hpp"

namespace softcell {
namespace {

constexpr Ipv4Addr kServer = 0x08080808u;

TEST(Counters, LookupsAndMissesAreCounted) {
  SwitchTable t;
  t.add_default(Direction::kDownlink, InPortSpec::any(), PolicyTag(1),
                RuleAction{NodeId(5), std::nullopt});
  (void)t.lookup(Direction::kDownlink, NodeId(0), PolicyTag(1), 0x0A000001u);
  (void)t.lookup(Direction::kDownlink, NodeId(0), PolicyTag(2), 0x0A000001u);
  EXPECT_EQ(t.lookups(), 2u);
  EXPECT_EQ(t.lookup_misses(), 1u);
}

TEST(Counters, PacketsAccumulatePerFlowInTheSim) {
  SoftCellConfig config;
  config.topo = {.k = 4, .seed = 17};
  SoftCellNetwork net(config, make_table1_policy());
  SubscriberProfile p;
  const UeId ue = net.add_subscriber(p);
  net.attach(ue, 0);
  const auto flow = net.open_flow(ue, kServer, 80);
  const auto before =
      net.controller().engine().table(net.topology().gateway()).lookups();
  (void)net.send_uplink(flow, TcpFlag::kSyn);
  for (int i = 0; i < 9; ++i) (void)net.send_uplink(flow);
  const auto after =
      net.controller().engine().table(net.topology().gateway()).lookups();
  EXPECT_EQ(after - before, 10u);  // one gateway lookup per uplink packet
}

TEST(StatsProtocol, RoundTripAndAgentReply) {
  using namespace ofp;
  const TableStatsMsg s{7, 100, 40, 30, 30, 12345, 9};
  const auto back = decode_stats_reply(encode_stats_reply(s));
  ASSERT_TRUE(back);
  EXPECT_EQ(*back, s);

  SwitchAgent agent(NodeId(1));
  RuleOp op;
  op.kind = RuleOp::Kind::kAddDefault;
  op.sw = NodeId(1);
  op.tag = PolicyTag(3);
  op.action = RuleAction{NodeId(9), std::nullopt};
  (void)agent.handle(encode_flow_mod(FlowMod{1, op}));
  const auto replies =
      agent.handle(encode_control(MsgType::kStatsRequest, 42));
  ASSERT_EQ(replies.size(), 1u);
  const auto stats = decode_stats_reply(replies[0]);
  ASSERT_TRUE(stats);
  EXPECT_EQ(stats->xid, 42u);
  EXPECT_EQ(stats->rule_count, 1u);
  EXPECT_EQ(stats->type2, 1u);
}

TEST(StatsProtocol, RejectsWrongSizeReply) {
  using namespace ofp;
  auto bytes = encode_stats_reply(TableStatsMsg{});
  bytes.pop_back();
  EXPECT_FALSE(decode_stats_reply(bytes));
}

class LeastLoadedTest : public ::testing::Test {
 protected:
  LeastLoadedTest() : topo_({.k = 4, .seed = 23}) {
    ControllerOptions opts;
    opts.placement = InstancePlacement::kLeastLoaded;
    ctrl_ = std::make_unique<Controller>(topo_, make_table1_policy(), opts);
  }

  CellularTopology topo_;
  std::unique_ptr<Controller> ctrl_;
};

TEST_F(LeastLoadedTest, SpreadsPathsAcrossInstances) {
  SubscriberProfile p;
  p.plan = BillingPlan::kSilver;
  const auto* clause = ctrl_->policy().match(p, AppType::kWeb);
  ASSERT_NE(clause, nullptr);
  for (std::uint32_t bs = 0; bs < topo_.num_base_stations(); bs += 2)
    (void)ctrl_->request_policy_path(bs, clause->id);

  // Load lands on pod instances and both core instances; no single
  // firewall instance hogs everything.
  std::uint64_t total = 0, max_load = 0;
  std::size_t used = 0;
  for (const auto idx : topo_.instances_of_type(mb::kFirewall)) {
    const auto load = ctrl_->instance_load(topo_.middleboxes()[idx].node);
    total += load;
    max_load = std::max(max_load, load);
    used += load > 0;
  }
  EXPECT_EQ(total, 80u);  // one firewall per installed path
  EXPECT_GE(used, 3u);
  EXPECT_LT(max_load, total);
}

TEST_F(LeastLoadedTest, SelectionIsMemoizedPerPath) {
  SubscriberProfile p;
  p.plan = BillingPlan::kSilver;
  const auto* clause = ctrl_->policy().match(p, AppType::kWeb);
  (void)ctrl_->request_policy_path(5, clause->id);
  const auto first = ctrl_->select_instances(5, clause->id);
  // Pile load elsewhere; the installed path's selection must not drift.
  for (std::uint32_t bs = 20; bs < 60; ++bs)
    (void)ctrl_->request_policy_path(bs, clause->id);
  EXPECT_EQ(ctrl_->select_instances(5, clause->id), first);
}

TEST(LeastLoadedE2e, TrafficFollowsTheBalancedSelection) {
  SoftCellConfig config;
  config.topo = {.k = 4, .seed = 23};
  config.controller.placement = InstancePlacement::kLeastLoaded;
  SoftCellNetwork net(config, make_table1_policy());
  SubscriberProfile p;
  p.plan = BillingPlan::kSilver;
  for (std::uint32_t bs = 0; bs < 24; bs += 2) {
    const UeId ue = net.add_subscriber(p);
    net.attach(ue, bs);
    const auto flow = net.open_flow(ue, kServer, 80);
    const auto up = net.send_uplink(flow, TcpFlag::kSyn);
    ASSERT_TRUE(up.delivered) << up.drop_reason;
    ASSERT_EQ(up.middlebox_sequence,
              net.expected_middleboxes(bs, *[&] {
                const auto* c = net.controller().policy().match(p, AppType::kWeb);
                return std::optional<ClauseId>(c->id);
              }()));
    ASSERT_TRUE(net.send_downlink(flow).delivered);
  }
}

}  // namespace
}  // namespace softcell
