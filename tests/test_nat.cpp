#include "packet/nat.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

namespace softcell {
namespace {

FlowKey make_flow(std::uint32_t i) {
  return FlowKey{0x0A000000u + i, 0x08080808u, static_cast<std::uint16_t>(1000 + i % 60000),
                 443, IpProto::kTcp};
}

TEST(FlowNat, StableMappingPerFlow) {
  FlowNat nat(Prefix(0xC6336400u, 24), 1);  // 198.51.100.0/24
  const auto f = make_flow(1);
  const auto e1 = nat.translate_outbound(f);
  const auto e2 = nat.translate_outbound(f);
  EXPECT_EQ(e1, e2);
  EXPECT_EQ(nat.active_flows(), 1u);
}

TEST(FlowNat, InboundInvertsOutbound) {
  FlowNat nat(Prefix(0xC6336400u, 24), 2);
  const auto f = make_flow(7);
  const auto pub = nat.translate_outbound(f);
  const auto back = nat.translate_inbound(pub);
  ASSERT_TRUE(back);
  EXPECT_EQ(*back, f);
}

TEST(FlowNat, UnsolicitedInboundIsRejected) {
  FlowNat nat(Prefix(0xC6336400u, 24), 3);
  EXPECT_FALSE(nat.translate_inbound(PublicEndpoint{0xC6336401u, 5555}));
}

TEST(FlowNat, ReleaseFreesEndpoint) {
  FlowNat nat(Prefix(0xC6336400u, 24), 4);
  const auto f = make_flow(9);
  const auto pub = nat.translate_outbound(f);
  nat.release(f);
  EXPECT_EQ(nat.active_flows(), 0u);
  EXPECT_FALSE(nat.translate_inbound(pub));
  nat.release(f);  // double release is a no-op
}

TEST(FlowNat, EndpointsInPool) {
  const Prefix pool(0xC6336400u, 24);
  FlowNat nat(pool, 5);
  for (std::uint32_t i = 0; i < 500; ++i) {
    const auto e = nat.translate_outbound(make_flow(i));
    EXPECT_TRUE(pool.contains(e.ip));
    EXPECT_GE(e.port, 1024);
  }
}

TEST(FlowNat, EndpointsUniqueAcrossFlows) {
  FlowNat nat(Prefix(0xC6336400u, 24), 6);
  std::unordered_set<std::uint64_t> seen;
  for (std::uint32_t i = 0; i < 2000; ++i) {
    const auto e = nat.translate_outbound(make_flow(i));
    EXPECT_TRUE(
        seen.insert((static_cast<std::uint64_t>(e.ip) << 16) | e.port).second);
  }
}

// Privacy property (section 4.1): mappings for the same UE before and after
// a "move" (new LocIP, same remote) share no endpoint correlation -- here we
// check at minimum that distinct internal flows never share a public
// endpoint and that endpoints do not embed the internal address bits.
TEST(FlowNat, NoAddressBitsLeak) {
  FlowNat nat(Prefix(0xC6336400u, 24), 7);
  int equal_hostbits = 0;
  const int n = 1000;
  for (std::uint32_t i = 0; i < n; ++i) {
    const auto f = make_flow(i);
    const auto e = nat.translate_outbound(f);
    if ((e.ip & 0xFFu) == (f.src_ip & 0xFFu)) ++equal_hostbits;
  }
  // Random assignment collides on the low byte ~1/256 of the time.
  EXPECT_LT(equal_hostbits, n / 16);
}

TEST(FlowNat, TooSmallPoolRejected) {
  EXPECT_THROW(FlowNat(Prefix(0xC6336400u, 31), 1), std::invalid_argument);
}

}  // namespace
}  // namespace softcell
