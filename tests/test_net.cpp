// softcell::net -- the TCP/epoll serving front end, exercised over real
// loopback sockets.
//
// Directed coverage for the stream-layer hazards a wire protocol must
// survive: partial reads (frames cut at arbitrary byte boundaries by the
// kernel), short writes (kernel send buffer full mid-reply), connections
// dropped with requests still in flight, and slow clients that stop
// reading while replies accumulate (bounded outbound buffer, drop and
// count, connection survives).  Plus the acceptance property: a wire run
// of the deterministic cbench workload lands on the exact controller
// fingerprint the in-process reference run produces.
#include "net/server.hpp"

#include <gtest/gtest.h>
#include <sys/socket.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "net/client.hpp"
#include "net/dispatch.hpp"
#include "net/event_loop.hpp"
#include "runtime/runtime.hpp"
#include "telemetry/registry.hpp"
#include "workload/wire_workload.hpp"

namespace softcell {
namespace {

using namespace std::chrono_literals;

template <typename Pred>
bool poll_until(Pred pred, std::chrono::milliseconds timeout = 5000ms) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (!pred()) {
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(1ms);
  }
  return true;
}

// Replies inline from the loop thread: xid/kind echoed, digest derived
// from the request so the client can verify payload integrity end to end.
class EchoDispatcher final : public net::Dispatcher {
 public:
  void dispatch(const ofp::PacketInMsg& msg,
                std::function<void(ofp::PacketInReply&&)> done) override {
    ofp::PacketInReply reply;
    reply.xid = msg.xid;
    reply.kind = msg.kind;
    reply.digest =
        (static_cast<std::uint64_t>(msg.ue.value()) << 32) | msg.bs;
    dispatched.fetch_add(1, std::memory_order_relaxed);
    done(std::move(reply));
  }
  [[nodiscard]] std::uint64_t fingerprint() override { return 0xF00D; }
  void drain() override {}

  std::atomic<std::uint64_t> dispatched{0};
};

// Holds every completion until released, so tests control exactly when
// replies race connection teardown.
class HoldDispatcher final : public net::Dispatcher {
 public:
  void dispatch(const ofp::PacketInMsg& msg,
                std::function<void(ofp::PacketInReply&&)> done) override {
    ofp::PacketInReply reply;
    reply.xid = msg.xid;
    reply.kind = msg.kind;
    {
      std::lock_guard<std::mutex> lock(mu_);
      held_.emplace_back(std::move(reply), std::move(done));
      ++total_;
    }
    cv_.notify_all();
  }
  [[nodiscard]] std::uint64_t fingerprint() override { return 0; }
  void drain() override { release_all(); }

  bool wait_for_dispatched(std::size_t n,
                           std::chrono::milliseconds timeout = 5000ms) {
    std::unique_lock<std::mutex> lock(mu_);
    return cv_.wait_for(lock, timeout, [&] { return total_ >= n; });
  }

  void release_all() {
    std::vector<std::pair<ofp::PacketInReply,
                          std::function<void(ofp::PacketInReply&&)>>>
        take;
    {
      std::lock_guard<std::mutex> lock(mu_);
      take.swap(held_);
    }
    for (auto& [reply, done] : take) done(std::move(reply));
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<std::pair<ofp::PacketInReply,
                        std::function<void(ofp::PacketInReply&&)>>>
      held_;
  std::size_t total_ = 0;
};

// Loop + server + loop thread, torn down in order.
class ServerHarness {
 public:
  explicit ServerHarness(net::Dispatcher& dispatcher,
                         net::ControllerServer::Options options =
                             net::ControllerServer::Options())
      : server_(loop_, dispatcher, options) {
    std::string err;
    ok_ = loop_.ok() && server_.start(&err);
    if (ok_) thread_ = std::thread([this] { loop_.run(); });
  }
  ~ServerHarness() {
    if (!ok_) return;
    server_.request_stop();
    thread_.join();
  }

  [[nodiscard]] bool ok() const { return ok_; }
  [[nodiscard]] std::uint16_t port() const { return server_.port(); }
  [[nodiscard]] net::NetStats& stats() { return server_.stats(); }
  [[nodiscard]] net::ControllerServer& server() { return server_; }

 private:
  net::EventLoop loop_;
  net::ControllerServer server_;
  std::thread thread_;
  bool ok_ = false;
};

ofp::PacketInMsg fetch_msg(std::uint32_t xid, std::uint32_t ue,
                           std::uint32_t bs) {
  ofp::PacketInMsg msg;
  msg.xid = xid;
  msg.kind = ofp::PacketInMsg::Kind::kFetchClassifiers;
  msg.ue = UeId(ue);
  msg.bs = bs;
  return msg;
}

TEST(NetEventLoop, PostRunsTasksOnLoopThread) {
  net::EventLoop loop;
  ASSERT_TRUE(loop.ok());
  std::thread t([&] { loop.run(); });
  std::atomic<bool> ran{false};
  std::atomic<bool> on_loop_thread{false};
  loop.post([&] {
    on_loop_thread.store(loop.in_loop_thread());
    ran.store(true);
  });
  EXPECT_TRUE(poll_until([&] { return ran.load(); }));
  EXPECT_TRUE(on_loop_thread.load());
  loop.stop();
  t.join();
}

// The kernel may deliver a frame in any number of fragments; the server
// must reassemble no matter where the cuts land -- including one byte at
// a time.
TEST(NetServer, PartialReadsReassemble) {
  EchoDispatcher dispatcher;
  ServerHarness h(dispatcher);
  ASSERT_TRUE(h.ok());

  net::WireConn conn;
  std::string err;
  ASSERT_TRUE(conn.connect(h.port(), &err)) << err;

  // One frame, trickled a byte at a time.
  const auto frame = ofp::encode_packet_in(fetch_msg(7, 1234, 5));
  for (const std::uint8_t byte : frame)
    ASSERT_TRUE(conn.send_bytes(std::span(&byte, 1)));
  auto reply_frame = conn.recv_frame(5000ms);
  ASSERT_TRUE(reply_frame);
  auto reply = ofp::decode_packet_in_reply(*reply_frame);
  ASSERT_TRUE(reply);
  EXPECT_EQ(reply->xid, 7u);
  EXPECT_EQ(reply->digest, (std::uint64_t{1234} << 32) | 5u);

  // Three frames batched into one buffer, cut mid-frame: replies come
  // back complete and in order.
  std::vector<std::uint8_t> batch;
  for (std::uint32_t i = 0; i < 3; ++i)
    ofp::encode_packet_in_into(batch, fetch_msg(100 + i, 10 + i, i));
  const std::size_t cut = ofp::kPacketInSize + 3;  // mid second frame
  ASSERT_TRUE(conn.send_bytes(std::span(batch).first(cut)));
  ASSERT_TRUE(conn.send_bytes(std::span(batch).subspan(cut)));
  for (std::uint32_t i = 0; i < 3; ++i) {
    auto f = conn.recv_frame(5000ms);
    ASSERT_TRUE(f);
    auto r = ofp::decode_packet_in_reply(*f);
    ASSERT_TRUE(r);
    EXPECT_EQ(r->xid, 100 + i);
    EXPECT_EQ(r->digest, (std::uint64_t{10 + i} << 32) | i);
  }
  EXPECT_EQ(h.stats().decode_errors.load(), 0u);
}

// Queue far more reply bytes than the kernel socket buffers hold while
// the client is not reading: flush hits EAGAIN (short write), the loop
// arms kWritable, and every reply still arrives once the client reads.
TEST(NetServer, ShortWritesRecoverWithoutLoss) {
  EchoDispatcher dispatcher;
  net::ControllerServer::Options options;
  // Pin kernel-side buffering far below the reply volume so flush_conn
  // must hit EAGAIN (the kernel's sndbuf autotuning would otherwise
  // absorb hundreds of KiB on loopback).
  options.sndbuf_bytes = 8192;
  ServerHarness h(dispatcher, options);
  ASSERT_TRUE(h.ok());

  net::WireConn conn;
  std::string err;
  ASSERT_TRUE(conn.connect(h.port(), &err)) << err;
  const int rcvbuf = 4096;
  ASSERT_EQ(::setsockopt(conn.fd(), SOL_SOCKET, SO_RCVBUF, &rcvbuf,
                         sizeof(rcvbuf)),
            0);

  constexpr std::uint32_t kRequests = 4000;  // 96 KiB of replies
  std::vector<std::uint8_t> batch;
  batch.reserve(kRequests * ofp::kPacketInSize);
  for (std::uint32_t i = 0; i < kRequests; ++i)
    ofp::encode_packet_in_into(batch, fetch_msg(i, i, i % 16));
  ASSERT_TRUE(conn.send_bytes(batch));

  // Wait until the server has decided every reply (encoded, none dropped:
  // the backlog stays far below the 1 MiB default cap) before reading.
  ASSERT_TRUE(poll_until(
      [&] { return h.stats().replies_out.load() == kRequests; }));
  EXPECT_EQ(h.stats().backpressure_drops.load(), 0u);

  for (std::uint32_t i = 0; i < kRequests; ++i) {
    auto f = conn.recv_frame(5000ms);
    ASSERT_TRUE(f) << "reply " << i;
    auto r = ofp::decode_packet_in_reply(*f);
    ASSERT_TRUE(r);
    EXPECT_EQ(r->xid, i);  // in order, none lost or duplicated
  }
  EXPECT_GE(h.stats().short_writes.load(), 1u);
  EXPECT_EQ(h.stats().packet_ins.load(), kRequests);
}

// Connection drops while its request is still in the pipeline: the
// completion finds the connection gone and is counted, never crashes,
// never lands on a reused connection.
TEST(NetServer, MidRequestConnectionDrop) {
  HoldDispatcher dispatcher;
  ServerHarness h(dispatcher);
  ASSERT_TRUE(h.ok());

  net::WireConn conn;
  std::string err;
  ASSERT_TRUE(conn.connect(h.port(), &err)) << err;
  ASSERT_TRUE(conn.send_packet_in(fetch_msg(1, 42, 0)));
  ASSERT_TRUE(dispatcher.wait_for_dispatched(1));

  // A second frame cut off mid-stream plus the close: the half frame must
  // not count as a decode error (the stream just ended).
  const auto partial = ofp::encode_packet_in(fetch_msg(2, 43, 0));
  ASSERT_TRUE(conn.send_bytes(std::span(partial).first(10)));
  conn.close();
  ASSERT_TRUE(poll_until([&] { return h.stats().closes.load() == 1; }));

  dispatcher.release_all();
  ASSERT_TRUE(
      poll_until([&] { return h.stats().dropped_replies.load() == 1; }));
  EXPECT_EQ(h.stats().decode_errors.load(), 0u);
  EXPECT_EQ(h.stats().conns_open.load(), 0);
}

// Broken framing (a length-prefixed stream cannot resync) drops the
// connection; an intact frame of a type the serving plane does not speak
// is counted and skipped with the connection kept.
TEST(NetServer, BadFramesHandledPerSeverity) {
  EchoDispatcher dispatcher;
  ServerHarness h(dispatcher);
  ASSERT_TRUE(h.ok());

  {
    net::WireConn conn;
    std::string err;
    ASSERT_TRUE(conn.connect(h.port(), &err)) << err;
    std::vector<std::uint8_t> garbage(ofp::kHeaderSize, 0);
    garbage[0] = ofp::MsgHeader::kVersion + 1;  // wrong version
    ASSERT_TRUE(conn.send_bytes(garbage));
    EXPECT_FALSE(conn.recv_frame(2000ms));  // server closed on us
    ASSERT_TRUE(poll_until([&] { return h.stats().closes.load() == 1; }));
    EXPECT_EQ(h.stats().decode_errors.load(), 1u);
  }
  {
    net::WireConn conn;
    std::string err;
    ASSERT_TRUE(conn.connect(h.port(), &err)) << err;
    const auto stray = ofp::encode_control(ofp::MsgType::kBarrierRequest, 9);
    ASSERT_TRUE(conn.send_bytes(stray));
    ASSERT_TRUE(
        poll_until([&] { return h.stats().decode_errors.load() == 2; }));
    EXPECT_TRUE(conn.echo(10));  // connection survived the stray frame
    EXPECT_EQ(h.stats().closes.load(), 1u);
  }
}

// A slow client: its outbound buffer is pinned at the cap by an unread
// echo backlog, so packet-in replies are dropped and counted while the
// connection stays open and drains at the client's pace.
TEST(NetServer, SlowClientBackpressureDropsAndSurvives) {
  EchoDispatcher dispatcher;
  net::ControllerServer::Options options;
  options.max_outbound_bytes = 64;
  options.sndbuf_bytes = 8192;  // pin kernel buffering; see short-write test
  ServerHarness h(dispatcher, options);
  ASSERT_TRUE(h.ok());

  net::WireConn conn;
  std::string err;
  ASSERT_TRUE(conn.connect(h.port(), &err)) << err;
  const int rcvbuf = 4096;
  ASSERT_EQ(::setsockopt(conn.fd(), SOL_SOCKET, SO_RCVBUF, &rcvbuf,
                         sizeof(rcvbuf)),
            0);

  // Fill the kernel buffers and the server-side outbound buffer with echo
  // replies (echo bypasses the cap: it is the probe).  64 KiB of replies
  // against ~16 KiB of pinned kernel capacity keeps unsent >> 64 bytes.
  constexpr std::uint32_t kEchoes = 8000;
  std::vector<std::uint8_t> echoes;
  echoes.reserve(kEchoes * ofp::kHeaderSize);
  for (std::uint32_t i = 0; i < kEchoes; ++i) {
    const auto e = ofp::encode_control(ofp::MsgType::kEchoRequest, i);
    echoes.insert(echoes.end(), e.begin(), e.end());
  }
  ASSERT_TRUE(conn.send_bytes(echoes));
  ASSERT_TRUE(poll_until([&] { return h.stats().short_writes.load() >= 1; }));

  // Every packet-in reply now lands on a buffer at the cap: all dropped.
  constexpr std::uint32_t kDropped = 50;
  std::vector<std::uint8_t> batch;
  for (std::uint32_t i = 0; i < kDropped; ++i)
    ofp::encode_packet_in_into(batch, fetch_msg(i, i, 0));
  ASSERT_TRUE(conn.send_bytes(batch));
  ASSERT_TRUE(poll_until(
      [&] { return h.stats().backpressure_drops.load() == kDropped; }));
  EXPECT_EQ(h.stats().replies_out.load(), 0u);

  // The connection is intact: drain the echo backlog, then round-trip.
  std::uint32_t echo_replies = 0;
  while (echo_replies < kEchoes) {
    auto f = conn.recv_frame(5000ms);
    ASSERT_TRUE(f) << "after " << echo_replies << " echo replies";
    const auto head = ofp::peek_header(*f);
    ASSERT_TRUE(head);
    ASSERT_EQ(head->type, static_cast<std::uint8_t>(ofp::MsgType::kEchoReply));
    ++echo_replies;
  }
  EXPECT_TRUE(conn.echo(999999));
  EXPECT_EQ(h.stats().closes.load(), 0u);
}

// Control probes bypass the drop-and-count cap but not the hard one: a
// client that floods echo requests while never reading is closed and
// counted once its outbound buffer passes control_outbound_limit,
// instead of growing it without bound.
TEST(NetServer, EchoFloodPastHardCapCloses) {
  EchoDispatcher dispatcher;
  net::ControllerServer::Options options;
  options.max_outbound_bytes = 2048;
  options.control_outbound_limit = 4096;
  options.sndbuf_bytes = 8192;  // pin kernel buffering; see short-write test
  ServerHarness h(dispatcher, options);
  ASSERT_TRUE(h.ok());

  net::WireConn conn;
  std::string err;
  ASSERT_TRUE(conn.connect(h.port(), &err)) << err;
  const int rcvbuf = 4096;
  ASSERT_EQ(::setsockopt(conn.fd(), SOL_SOCKET, SO_RCVBUF, &rcvbuf,
                         sizeof(rcvbuf)),
            0);

  // ~256 KiB of echo replies against ~16 KiB of pinned kernel capacity
  // and a 4 KiB hard cap: the server must close, not buffer the rest.
  constexpr std::uint32_t kEchoes = 16000;
  std::vector<std::uint8_t> echoes;
  echoes.reserve(kEchoes * ofp::kHeaderSize);
  for (std::uint32_t i = 0; i < kEchoes; ++i) {
    const auto e = ofp::encode_control(ofp::MsgType::kEchoRequest, i);
    echoes.insert(echoes.end(), e.begin(), e.end());
  }
  conn.send_bytes(echoes);  // may fail mid-send once the server closes
  ASSERT_TRUE(
      poll_until([&] { return h.stats().overflow_closes.load() >= 1; }));
  ASSERT_TRUE(poll_until([&] { return h.stats().closes.load() == 1; }));
  EXPECT_EQ(h.stats().conns_open.load(), 0);

  // The server itself is intact: a fresh connection round-trips.
  net::WireConn probe;
  ASSERT_TRUE(probe.connect(h.port(), &err)) << err;
  EXPECT_TRUE(probe.echo(1));
}

// Hard resets racing in-flight echo replies: when a flush inside the
// frame loop hits ECONNRESET, the connection must be closed exactly once
// and never touched again (the use-after-free regression; ASan guards
// the Conn lifetime on every iteration).
TEST(NetServer, AbortiveResetDuringEchoBurstSurvives) {
  EchoDispatcher dispatcher;
  net::ControllerServer::Options options;
  options.sndbuf_bytes = 8192;
  ServerHarness h(dispatcher, options);
  ASSERT_TRUE(h.ok());

  constexpr int kRounds = 50;
  for (int round = 0; round < kRounds; ++round) {
    net::WireConn conn;
    std::string err;
    ASSERT_TRUE(conn.connect(h.port(), &err)) << err;
    const linger lg{1, 0};  // close() sends RST, not FIN
    ASSERT_EQ(::setsockopt(conn.fd(), SOL_SOCKET, SO_LINGER, &lg,
                           sizeof(lg)),
              0);
    std::vector<std::uint8_t> burst;
    for (std::uint32_t i = 0; i < 64; ++i) {
      const auto e = ofp::encode_control(ofp::MsgType::kEchoRequest, i);
      burst.insert(burst.end(), e.begin(), e.end());
    }
    ASSERT_TRUE(conn.send_bytes(burst));
    conn.close();  // RST races the server's per-frame reply flushes
  }
  ASSERT_TRUE(poll_until([&] {
    return h.stats().closes.load() == kRounds &&
           h.stats().conns_open.load() == 0;
  }));
  net::WireConn probe;
  std::string err;
  ASSERT_TRUE(probe.connect(h.port(), &err)) << err;
  EXPECT_TRUE(probe.echo(1));
}

// The acceptance property: the same deterministic workload over loopback
// TCP and in-process lands on the same canonical controller fingerprint,
// and after the run the server drains gracefully and stops accepting.
TEST(NetServer, WireRunMatchesInProcessFingerprintThenDrains) {
  WireWorkloadConfig config;
  config.connections = 2;
  config.requests_per_conn = 200;
  config.shards = 4;
  const CellularTopology topo = config.make_topology();
  const std::uint64_t reference = run_wire_workload_inprocess(topo, config);

  std::vector<ClauseId> clauses;
  BrainBundle bundle(topo,
                     make_wire_policy(topo, config.num_clauses, &clauses),
                     config.shards);
  provision_wire_ues(bundle.brain(), config, topo.num_base_stations());
  ControlPlaneRuntime runtime(
      bundle.brain(), {.workers = config.workers, .queue_capacity = 8192});
  net::RuntimeDispatcher dispatcher(runtime, bundle.brain());
  ServerHarness h(dispatcher);
  ASSERT_TRUE(h.ok());

  const WireLoadResult result = run_wire_load(
      h.port(), topo.num_base_stations(), clauses, config);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.received,
            static_cast<std::uint64_t>(config.connections) *
                config.requests_per_conn);
  EXPECT_EQ(result.failed, 0u);
  EXPECT_EQ(result.server.fingerprint, reference);
  EXPECT_EQ(result.server.drops, 0u);

  // Graceful drain: everything flushes, and new connections are no longer
  // accepted (the listener is out of the loop; echo gets no answer).
  EXPECT_TRUE(h.server().drain(5000ms));
  const std::uint64_t accepts = h.stats().accepts.load();
  net::WireConn late;
  std::string err;
  if (late.connect(h.port(), &err)) {  // backlog may still take the SYN
    EXPECT_FALSE(late.echo(1, 300ms));
  }
  EXPECT_EQ(h.stats().accepts.load(), accepts);
}

// The serving stats surface in the global telemetry registry next to the
// rest of the control plane (collector-hook pattern, like ofp.* faults).
TEST(NetServer, StatsSurfaceInTelemetryRegistry) {
  EchoDispatcher dispatcher;
  ServerHarness h(dispatcher);
  ASSERT_TRUE(h.ok());

  net::WireConn conn;
  std::string err;
  ASSERT_TRUE(conn.connect(h.port(), &err)) << err;
  ASSERT_TRUE(conn.echo(1));

  const telemetry::Snapshot snapshot = telemetry::Registry::global().collect();
  const auto* accepts = snapshot.find("net.accepts");
  ASSERT_NE(accepts, nullptr);
  EXPECT_GE(accepts->count, 1u);
  EXPECT_NE(snapshot.find("net.bytes_in"), nullptr);
  EXPECT_NE(snapshot.find("net.conns_open"), nullptr);
}

}  // namespace
}  // namespace softcell
