// End-to-end packet tests over the full SoftCell system: policy routing,
// state embedding in headers (Fig. 4), the dumb gateway property, NAT.
#include "sim/network.hpp"

#include <gtest/gtest.h>

namespace softcell {
namespace {

constexpr Ipv4Addr kServer = 0x08080808u;

class E2eTest : public ::testing::Test {
 protected:
  E2eTest() : net_(SoftCellConfig{.topo = {.k = 4, .seed = 17}},
                   make_table1_policy()) {}

  UeId silver_ue(std::uint32_t bs) {
    SubscriberProfile p;
    p.plan = BillingPlan::kSilver;
    const UeId ue = net_.add_subscriber(p);
    net_.attach(ue, bs);
    return ue;
  }

  SoftCellNetwork net_;
};

TEST_F(E2eTest, UplinkWebFlowDeliveredThroughFirewall) {
  const UeId ue = silver_ue(0);
  const auto flow = net_.open_flow(ue, kServer, 80);
  const auto d = net_.send_uplink(flow, TcpFlag::kSyn);
  ASSERT_TRUE(d.delivered) << d.drop_reason;
  ASSERT_EQ(d.middlebox_sequence.size(), 1u);
  EXPECT_EQ(net_.middlebox(d.middlebox_sequence[0]).kind(), "firewall");
}

TEST_F(E2eTest, StateEmbeddedInSourceHeader) {
  // Fig. 4: the packet leaves the network with LocIP as source address and
  // the policy tag in the high bits of the source port.
  const UeId ue = silver_ue(3);
  const auto flow = net_.open_flow(ue, kServer, 80);
  const auto d = net_.send_uplink(flow, TcpFlag::kSyn);
  ASSERT_TRUE(d.delivered) << d.drop_reason;
  const auto fields = net_.plan().decode(d.final_packet.key.src_ip);
  ASSERT_TRUE(fields);
  EXPECT_EQ(fields->bs_index, 3u);
  const auto tag = net_.codec().tag_of(d.final_packet.key.src_port);
  // The tag corresponds to the installed web-clause path at bs 3.
  SubscriberProfile p;
  p.plan = BillingPlan::kSilver;
  const auto* clause = net_.controller().policy().match(p, AppType::kWeb);
  ASSERT_NE(clause, nullptr);
  EXPECT_EQ(net_.controller().store().path(clause->id, 3), tag);
}

TEST_F(E2eTest, DownlinkReturnsThroughSameMiddleboxesReversed) {
  const UeId ue = silver_ue(5);
  const auto flow = net_.open_flow(ue, kServer, 1935);  // video: fw+transcoder
  const auto up = net_.send_uplink(flow, TcpFlag::kSyn);
  ASSERT_TRUE(up.delivered) << up.drop_reason;
  ASSERT_EQ(up.middlebox_sequence.size(), 2u);

  const auto down = net_.send_downlink(flow);
  ASSERT_TRUE(down.delivered) << down.drop_reason;
  ASSERT_EQ(down.middlebox_sequence.size(), 2u);
  EXPECT_EQ(down.middlebox_sequence[0], up.middlebox_sequence[1]);
  EXPECT_EQ(down.middlebox_sequence[1], up.middlebox_sequence[0]);
  // Delivered to the UE's permanent address and original port.
  EXPECT_EQ(down.final_packet.key.dst_ip, flow.key.src_ip);
  EXPECT_EQ(down.final_packet.key.dst_port, flow.key.src_port);
}

TEST_F(E2eTest, MiddleboxSequenceMatchesPolicySelection) {
  const UeId ue = silver_ue(9);
  const auto flow = net_.open_flow(ue, kServer, 1935);
  const auto up = net_.send_uplink(flow, TcpFlag::kSyn);
  ASSERT_TRUE(up.delivered) << up.drop_reason;
  SubscriberProfile p;
  p.plan = BillingPlan::kSilver;
  const auto* clause = net_.controller().policy().match(p, AppType::kVideo);
  const auto expected = net_.expected_middleboxes(9, clause->id);
  EXPECT_EQ(up.middlebox_sequence, expected);
}

TEST_F(E2eTest, TranscoderShrinksVideoPayload) {
  const UeId ue = silver_ue(2);
  const auto flow = net_.open_flow(ue, kServer, 1935);
  (void)net_.send_uplink(flow, TcpFlag::kSyn);
  const auto down = net_.send_downlink(flow, TcpFlag::kNone, 1000);
  ASSERT_TRUE(down.delivered) << down.drop_reason;
  EXPECT_LT(down.final_packet.payload_bytes, 1000u);
}

TEST_F(E2eTest, ForeignProviderDenied) {
  SubscriberProfile p;
  p.provider = 9;
  const UeId ue = net_.add_subscriber(p);
  net_.attach(ue, 0);
  const auto flow = net_.open_flow(ue, kServer, 80);
  const auto d = net_.send_uplink(flow, TcpFlag::kSyn);
  EXPECT_FALSE(d.delivered);
  EXPECT_EQ(d.drop_reason, "denied by service policy");
}

TEST_F(E2eTest, RoamingPartnerAllowedThroughFirewall) {
  SubscriberProfile p;
  p.provider = 1;
  const UeId ue = net_.add_subscriber(p);
  net_.attach(ue, 0);
  const auto flow = net_.open_flow(ue, kServer, 80);
  const auto d = net_.send_uplink(flow, TcpFlag::kSyn);
  ASSERT_TRUE(d.delivered) << d.drop_reason;
  ASSERT_EQ(d.middlebox_sequence.size(), 1u);
}

TEST_F(E2eTest, UnattachedUeCannotSend) {
  SubscriberProfile p;
  const UeId ue = net_.add_subscriber(p);
  const auto flow = net_.open_flow(ue, kServer, 80);
  EXPECT_FALSE(net_.send_uplink(flow, TcpFlag::kSyn).delivered);
}

TEST_F(E2eTest, DownlinkBeforeUplinkImpossible) {
  const UeId ue = silver_ue(0);
  const auto flow = net_.open_flow(ue, kServer, 80);
  EXPECT_FALSE(net_.send_downlink(flow).delivered);
}

TEST_F(E2eTest, GatewayHoldsNoPerFlowState) {
  // The "dumb gateway" claim: fabric state at the gateway grows with
  // policies and locations, never with flows.
  const UeId ue = silver_ue(1);
  auto warm = net_.open_flow(ue, kServer, 80);
  (void)net_.send_uplink(warm, TcpFlag::kSyn);
  const auto gw_rules =
      net_.controller().engine().table(net_.topology().gateway()).rule_count();
  const auto access_rules = net_.access(1).flows().size();
  for (int i = 0; i < 50; ++i) {
    auto f = net_.open_flow(ue, kServer + 1 + static_cast<Ipv4Addr>(i), 80);
    ASSERT_TRUE(net_.send_uplink(f, TcpFlag::kSyn).delivered);
    ASSERT_TRUE(net_.send_downlink(f).delivered);
  }
  EXPECT_EQ(
      net_.controller().engine().table(net_.topology().gateway()).rule_count(),
      gw_rules);
  EXPECT_GT(net_.access(1).flows().size(), access_rules);  // edge holds state
}

TEST_F(E2eTest, ManyUesAcrossBaseStationsAllDelivered) {
  for (std::uint32_t bs = 0; bs < 40; bs += 3) {
    const UeId ue = silver_ue(bs);
    for (std::uint16_t port : {std::uint16_t{80}, std::uint16_t{1935},
                               std::uint16_t{5060}}) {
      const auto flow = net_.open_flow(ue, kServer, port);
      const auto up = net_.send_uplink(flow, TcpFlag::kSyn);
      ASSERT_TRUE(up.delivered) << "bs " << bs << " port " << port << ": "
                                << up.drop_reason;
      const auto down = net_.send_downlink(flow);
      ASSERT_TRUE(down.delivered) << "bs " << bs << " port " << port << ": "
                                  << down.drop_reason;
    }
  }
}

TEST_F(E2eTest, RepeatPacketsReuseMicroflowRules) {
  const UeId ue = silver_ue(0);
  const auto flow = net_.open_flow(ue, kServer, 80);
  (void)net_.send_uplink(flow, TcpFlag::kSyn);
  const auto misses = net_.agent(0).cache_misses();
  for (int i = 0; i < 5; ++i)
    ASSERT_TRUE(net_.send_uplink(flow).delivered);
  EXPECT_EQ(net_.agent(0).cache_misses(), misses);  // no agent involvement
}

class NatE2eTest : public ::testing::Test {
 protected:
  NatE2eTest()
      : net_(SoftCellConfig{.topo = {.k = 4, .seed = 17}, .enable_nat = true},
             make_table1_policy()) {}
  SoftCellNetwork net_;
};

TEST_F(NatE2eTest, ServerSeesOnlyNatPool) {
  SubscriberProfile p;
  p.plan = BillingPlan::kSilver;
  const UeId ue = net_.add_subscriber(p);
  net_.attach(ue, 4);
  const auto flow = net_.open_flow(ue, kServer, 80);
  const auto up = net_.send_uplink(flow, TcpFlag::kSyn);
  ASSERT_TRUE(up.delivered) << up.drop_reason;
  // No LocIP leaks: the source is in the NAT pool, not the carrier prefix.
  EXPECT_FALSE(net_.plan().carrier().contains(up.final_packet.key.src_ip));
  EXPECT_TRUE(Prefix(0xC6336400u, 24).contains(up.final_packet.key.src_ip));
  // Return traffic is translated back and delivered.
  const auto down = net_.send_downlink(flow);
  ASSERT_TRUE(down.delivered) << down.drop_reason;
  EXPECT_EQ(down.final_packet.key.dst_ip, flow.key.src_ip);
  EXPECT_EQ(net_.gateway_flow_state(), 1u);
}

TEST_F(NatE2eTest, FinReleasesNatState) {
  SubscriberProfile p;
  const UeId ue = net_.add_subscriber(p);
  net_.attach(ue, 0);
  const auto flow = net_.open_flow(ue, kServer, 80);
  ASSERT_TRUE(net_.send_uplink(flow, TcpFlag::kSyn).delivered);
  EXPECT_EQ(net_.gateway_flow_state(), 1u);
  ASSERT_TRUE(net_.send_uplink(flow, TcpFlag::kFin).delivered);
  EXPECT_EQ(net_.gateway_flow_state(), 0u);
}

}  // namespace
}  // namespace softcell

namespace softcell {
namespace {

// A clause that traverses the same middlebox type twice forces a loop at
// its host switch; the engine splits the path into tag segments joined by
// transit-tag swaps.  The *embedded* tag (Fig. 4) must survive: the server
// echoes it back and both directions keep working.
TEST(LoopyPolicy, EmbeddedTagSurvivesTagSwaps) {
  ServicePolicy policy;
  policy.add_clause(
      10, Predicate::any(),
      ServiceAction{true,
                    {mb::kFirewall, mb::kEchoCanceller, mb::kFirewall},
                    QosClass::kBestEffort});
  SoftCellConfig config;
  config.topo = {.k = 4, .seed = 71};
  SoftCellNetwork net(config, std::move(policy));

  const UeId ue = net.add_subscriber(SubscriberProfile{});
  net.attach(ue, 9);
  const auto flow = net.open_flow(ue, 0x08080808u, 80);
  const auto up = net.send_uplink(flow, TcpFlag::kSyn);
  ASSERT_TRUE(up.delivered) << up.drop_reason;
  ASSERT_EQ(up.middlebox_sequence.size(), 3u);
  EXPECT_EQ(up.middlebox_sequence[0], up.middlebox_sequence[2]);

  // The egress source port still carries the path's primary tag.
  SubscriberProfile p;
  const auto* clause = net.controller().policy().match(p, AppType::kWeb);
  const auto stored = net.controller().store().path(clause->id, 9);
  ASSERT_TRUE(stored);
  EXPECT_EQ(net.codec().tag_of(up.final_packet.key.src_port), *stored);

  // Return traffic resolves through the same (reversed) loopy path.
  const auto down = net.send_downlink(flow);
  ASSERT_TRUE(down.delivered) << down.drop_reason;
  ASSERT_EQ(down.middlebox_sequence.size(), 3u);
  EXPECT_EQ(down.final_packet.key.dst_ip, flow.key.src_ip);
}

// The shared delivery tier (section 7 multi-table design): delivery-region
// rules live under the reserved tag and are shared by all clauses, so the
// number of delivery rules does not grow with the number of clauses.
TEST(DeliveryTier, SharedAcrossClauses) {
  CellularTopology topo({.k = 4, .seed = 81});
  RoutingOracle routes(topo.graph());
  AggregationEngine eng(topo.graph(), {});

  const auto delivery_rules = [&] {
    std::size_t n = 0;
    for (std::uint32_t i = 0; i < topo.graph().node_count(); ++i) {
      const NodeId id(i);
      if (!topo.graph().is_fabric_switch(id)) continue;
      const auto& usage = eng.table(id).tag_usage(Direction::kDownlink);
      if (const auto it = usage.find(AggregationEngine::kDeliveryTag);
          it != usage.end())
        n += it->second.count;
    }
    return n;
  };

  std::size_t after_first = 0;
  for (std::uint32_t c = 0; c < 6; ++c) {
    const NodeId inst = topo.core_instance(c % 4, c / 4).node;
    std::optional<PolicyTag> hint;
    for (std::uint32_t bs = 0; bs < topo.num_base_stations(); bs += 2) {
      const auto path = expand_policy_path(
          topo.graph(), routes, Direction::kDownlink, topo.access_switch(bs),
          std::vector<NodeId>{inst}, topo.gateway(), topo.internet());
      const auto r = eng.install(path, bs, topo.bs_prefix(bs), hint);
      hint = r.tag;
    }
    if (c == 0) after_first = delivery_rules();
  }
  // Later clauses re-reference the shared tree; only the entry segments
  // from each clause's own last-middlebox host are new.  Growth must stay
  // far below one-full-tree-per-clause (6 clauses here).
  EXPECT_LT(delivery_rules(), 6 * after_first / 2);
}

}  // namespace
}  // namespace softcell

namespace softcell {
namespace {

// QoS handling (Table 1 clause 5): low-latency clauses are served by
// pod-local middlebox instances and priority queuing, so fleet-tracking
// telemetry sees visibly lower one-way latency than default traffic from
// the same base station.
TEST(QosLatency, FleetTrackingBeatsBestEffort) {
  SoftCellConfig config;
  config.topo = {.k = 4, .seed = 17};
  SoftCellNetwork net(config, make_table1_policy());

  SubscriberProfile tracker;
  tracker.device = DeviceClass::kM2mFleetTracker;
  const UeId van = net.add_subscriber(tracker);
  const UeId phone = net.add_subscriber(SubscriberProfile{});
  net.attach(van, 20);
  net.attach(phone, 20);

  const auto telemetry = net.open_flow(van, 0x08080808u, 8883);
  const auto web = net.open_flow(phone, 0x08080808u, 80);
  const auto t = net.send_uplink(telemetry, TcpFlag::kSyn);
  const auto w = net.send_uplink(web, TcpFlag::kSyn);
  ASSERT_TRUE(t.delivered) << t.drop_reason;
  ASSERT_TRUE(w.delivered) << w.drop_reason;
  EXPECT_GT(t.latency_ms, 0.0);
  EXPECT_LT(t.latency_ms, w.latency_ms);
  // The low-latency firewall is the pod-local instance, not the
  // gateway-side one the default placement would pick.
  ASSERT_EQ(t.middlebox_sequence.size(), 1u);
  EXPECT_EQ(t.middlebox_sequence[0],
            net.topology().pod_instance(mb::kFirewall,
                                        net.topology().pod_of_bs(20)).node);
  EXPECT_NE(t.middlebox_sequence[0], w.middlebox_sequence[0]);
}

TEST(QosLatency, DownlinkCarriesTheFlowsQosClass) {
  SoftCellConfig config;
  config.topo = {.k = 4, .seed = 17};
  SoftCellNetwork net(config, make_table1_policy());
  SubscriberProfile tracker;
  tracker.device = DeviceClass::kM2mFleetTracker;
  const UeId van = net.add_subscriber(tracker);
  const UeId phone = net.add_subscriber(SubscriberProfile{});
  net.attach(van, 4);
  net.attach(phone, 4);
  const auto telemetry = net.open_flow(van, 0x08080808u, 8883);
  const auto web = net.open_flow(phone, 0x08080809u, 80);
  (void)net.send_uplink(telemetry, TcpFlag::kSyn);
  (void)net.send_uplink(web, TcpFlag::kSyn);
  const auto t = net.send_downlink(telemetry);
  const auto w = net.send_downlink(web);
  ASSERT_TRUE(t.delivered && w.delivered);
  EXPECT_LT(t.latency_ms, w.latency_ms);
}

}  // namespace
}  // namespace softcell
