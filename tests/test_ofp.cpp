// Southbound protocol layer: codec round-trips, frame validation, barrier
// ordering, and the end-to-end equivalence property -- replaying the
// engine's serialized flow-mods through per-switch agents reconstructs
// byte-for-byte identical forwarding behaviour.
#include "ofp/switch_agent.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <thread>
#include <vector>

#include "core/path.hpp"
#include "ofp/mirror.hpp"
#include "topo/cellular.hpp"
#include "topo/routing.hpp"
#include "util/rng.hpp"

namespace softcell {
namespace {

using namespace ofp;

RuleOp sample_op() {
  RuleOp op;
  op.kind = RuleOp::Kind::kAddPrefix;
  op.sw = NodeId(42);
  op.dir = Direction::kDownlink;
  op.in = InPortSpec::from(NodeId(7));
  op.tag = PolicyTag(513);
  op.pre = Prefix(0x0A014000u, 18);
  op.action = RuleAction{NodeId(9), PolicyTag(2), true};
  return op;
}

TEST(FlowModCodec, RoundTripsEveryField) {
  const FlowMod mod{0xDEADBEEFu, sample_op()};
  const auto bytes = encode_flow_mod(mod);
  EXPECT_EQ(bytes.size(), kFlowModSize);
  const auto back = decode_flow_mod(bytes);
  ASSERT_TRUE(back);
  EXPECT_EQ(*back, mod);
}

TEST(FlowModCodec, RoundTripsRandomOps) {
  Rng rng(3);
  for (int i = 0; i < 2000; ++i) {
    RuleOp op;
    op.kind = static_cast<RuleOp::Kind>(rng.next_below(6));
    op.sw = NodeId(static_cast<std::uint32_t>(rng.next_below(1 << 20)));
    op.dir = static_cast<Direction>(rng.next_below(2));
    op.in = rng.next_bernoulli(0.5)
                ? InPortSpec::any()
                : InPortSpec::from(
                      NodeId(static_cast<std::uint32_t>(rng.next_below(1000))));
    op.tag = PolicyTag(static_cast<std::uint16_t>(rng.next_below(60000)));
    op.pre = Prefix(static_cast<Ipv4Addr>(rng.next_u64()),
                    static_cast<std::uint8_t>(rng.next_below(33)));
    if (rng.next_bernoulli(0.8))
      op.action.out_to =
          NodeId(static_cast<std::uint32_t>(rng.next_below(1 << 20)));
    if (rng.next_bernoulli(0.3))
      op.action.set_tag =
          PolicyTag(static_cast<std::uint16_t>(rng.next_below(1024)));
    op.action.resubmit = rng.next_bernoulli(0.2);
    const FlowMod mod{static_cast<std::uint32_t>(rng.next_u64()), op};
    const auto back = decode_flow_mod(encode_flow_mod(mod));
    ASSERT_TRUE(back) << i;
    EXPECT_EQ(*back, mod) << i;
  }
}

TEST(FlowModCodec, RejectsTruncatedAndCorrupted) {
  const auto bytes = encode_flow_mod(FlowMod{1, sample_op()});
  // Truncations at every length.
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    std::span<const std::uint8_t> cut(bytes.data(), len);
    EXPECT_FALSE(decode_flow_mod(cut)) << len;
  }
  // Bad version.
  auto bad = bytes;
  bad[0] = 9;
  EXPECT_FALSE(decode_flow_mod(bad));
  // Bad type.
  bad = bytes;
  bad[1] = 77;
  EXPECT_FALSE(decode_flow_mod(bad));
  // Out-of-range op kind / direction / prefix length.
  bad = bytes;
  bad[8] = 200;
  EXPECT_FALSE(decode_flow_mod(bad));
  bad = bytes;
  bad[9] = 2;
  EXPECT_FALSE(decode_flow_mod(bad));
  bad = bytes;
  bad[11] = 33;
  EXPECT_FALSE(decode_flow_mod(bad));
}

TEST(FlowModCodec, RejectsNonCanonicalPrefix) {
  auto bytes = encode_flow_mod(FlowMod{1, sample_op()});
  bytes[24] ^= 0x01;  // set a host bit below the prefix length
  EXPECT_FALSE(decode_flow_mod(bytes));
}

TEST(SwitchAgent, AppliesAndCounts) {
  SwitchAgent agent(NodeId(42));
  auto op = sample_op();
  op.action.set_tag.reset();
  op.action.resubmit = false;
  (void)agent.handle(encode_flow_mod(FlowMod{1, op}));
  EXPECT_EQ(agent.applied(), 1u);
  EXPECT_EQ(agent.table().rule_count(), 1u);
  // Lookup through the reconstructed table.
  const auto hit =
      agent.table().lookup(op.dir, NodeId(7), op.tag, op.pre.addr());
  ASSERT_TRUE(hit);
  EXPECT_EQ(hit->action.out_to, NodeId(9));
}

TEST(SwitchAgent, RejectsMisaddressedMods) {
  SwitchAgent agent(NodeId(1));
  (void)agent.handle(encode_flow_mod(FlowMod{1, sample_op()}));  // sw=42
  EXPECT_EQ(agent.applied(), 0u);
  EXPECT_EQ(agent.rejected(), 1u);
}

TEST(SwitchAgent, BarrierAndEchoReplies) {
  SwitchAgent agent(NodeId(1));
  auto replies = agent.handle(encode_control(MsgType::kBarrierRequest, 55));
  ASSERT_EQ(replies.size(), 1u);
  auto h = peek_header(replies[0]);
  ASSERT_TRUE(h);
  EXPECT_EQ(h->type, static_cast<std::uint8_t>(MsgType::kBarrierReply));
  EXPECT_EQ(h->xid, 55u);
  replies = agent.handle(encode_control(MsgType::kEchoRequest, 56));
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(peek_header(replies[0])->type,
            static_cast<std::uint8_t>(MsgType::kEchoReply));
}

TEST(ControlChannel, OrderedDeliveryWithBarriers) {
  ControlChannel chan(NodeId(42));
  auto op = sample_op();
  op.action.set_tag.reset();
  op.action.resubmit = false;
  chan.send(encode_flow_mod(FlowMod{1, op}));
  chan.send(encode_control(MsgType::kBarrierRequest, 100));
  chan.send(encode_control(MsgType::kBarrierRequest, 101));
  const auto barriers = chan.flush();
  EXPECT_EQ(barriers, (std::vector<std::uint32_t>{100, 101}));
  EXPECT_EQ(chan.agent().applied(), 1u);
  EXPECT_EQ(chan.pending(), 0u);
}

// The headline property: encode the engine's whole op stream, ship it
// through per-switch channels, and the reconstructed switch tables behave
// identically to the controller's own -- for installs AND removals.
TEST(Equivalence, ReplayedFlowModsReconstructIdenticalTables) {
  CellularTopology topo({.k = 4, .seed = 13});
  RoutingOracle routes(topo.graph());
  AggregationEngine eng(topo.graph(), {});

  std::unordered_map<NodeId, ControlChannel> channels;
  std::uint32_t xid = 1;
  eng.set_op_sink([&](const RuleOp& op) {
    auto [it, fresh] = channels.try_emplace(op.sw, op.sw);
    it->second.send(ofp::encode_flow_mod(FlowMod{xid++, op}));
  });

  // A workload with shared trunks, loops and removals.
  Rng rng(5);
  std::vector<PathId> handles;
  std::vector<std::optional<PolicyTag>> hints(6);
  for (std::uint32_t c = 0; c < 6; ++c) {
    const auto& inst = topo.core_instance(c % 4, c / 4);
    for (std::uint32_t bs = 0; bs < topo.num_base_stations(); bs += 3) {
      const auto path = expand_policy_path(
          topo.graph(), routes, Direction::kDownlink, topo.access_switch(bs),
          std::vector<NodeId>{inst.node}, topo.gateway(), topo.internet());
      const auto r = eng.install(path, bs, topo.bs_prefix(bs), hints[c]);
      hints[c] = r.tag;
      handles.push_back(r.path);
    }
  }
  for (std::size_t i = 0; i < handles.size(); i += 2) eng.remove(handles[i]);

  // Replay and compare every touched switch.
  std::size_t compared = 0;
  for (auto& [node, chan] : channels) {
    chan.send(encode_control(MsgType::kBarrierRequest, 0xFFFF));
    const auto barriers = chan.flush();
    ASSERT_EQ(barriers.size(), 1u);
    ASSERT_EQ(chan.agent().rejected(), 0u) << chan.agent().last_error();

    const SwitchTable& truth = eng.table(node);
    const SwitchTable& replica = chan.agent().table();
    ASSERT_EQ(replica.rule_count(), truth.rule_count()) << node.value();
    ASSERT_EQ(replica.type1_count(), truth.type1_count());
    ASSERT_EQ(replica.type2_count(), truth.type2_count());
    ASSERT_EQ(replica.type3_count(), truth.type3_count());
    // Behavioural equality on sampled lookups.
    for (int probe = 0; probe < 200; ++probe) {
      const auto bs = static_cast<std::uint32_t>(
          rng.next_below(topo.num_base_stations()));
      const PolicyTag tag(static_cast<std::uint16_t>(rng.next_below(12)));
      const Ipv4Addr addr = topo.bs_prefix(bs).addr();
      for (const Direction dir : {Direction::kUplink, Direction::kDownlink}) {
        const auto a = truth.lookup(dir, topo.gateway(), tag, addr);
        const auto b = replica.lookup(dir, topo.gateway(), tag, addr);
        ASSERT_EQ(a.has_value(), b.has_value());
        if (a) {
          EXPECT_EQ(a->action, b->action);
          EXPECT_EQ(a->shape, b->shape);
        }
      }
    }
    ++compared;
  }
  EXPECT_GT(compared, 10u);
}

// Lock-discipline regression (softcell-verify Part A finding, PR 4):
// Mirror had no internal synchronization although enqueue() fires on
// runtime worker threads (via the engine op sink) while the harness thread
// polls pending()/fault_stats()/switches() and eventually sync()s --
// concurrent unordered_map insertion vs. iteration over channels_.  All
// mirror state is now behind Mirror::mu_.  This test replays that shape:
// installer threads mutate the engine (serialized by an external mutex,
// standing in for the shard controller's writer lock, so the *mirror* is
// the only shared structure under test) while the main thread hammers the
// introspection API; afterwards the replica tables must still match the
// engine exactly.  Run under -DSOFTCELL_SANITIZE=thread via the
// concurrency label.
TEST(MirrorThreadSafety, WorkerEnqueuesRaceHarnessIntrospection) {
  CellularTopology topo({.k = 4, .seed = 29});
  RoutingOracle routes(topo.graph());
  AggregationEngine eng(topo.graph(), {});
  Mirror mirror(eng);

  std::mutex engine_mu;  // the shard controller's writer lock, in miniature
  std::atomic<bool> done{false};
  std::vector<std::thread> installers;
  for (int t = 0; t < 2; ++t) {
    installers.emplace_back([&, t] {
      for (std::uint32_t bs = static_cast<std::uint32_t>(t);
           bs < topo.num_base_stations(); bs += 2) {
        // Path expansion happens under the writer lock, exactly as in
        // Controller::install_path_locked -- RoutingOracle memoizes BFS
        // trees lazily and is not thread-safe on its own.
        std::lock_guard<std::mutex> lock(engine_mu);
        const auto path = expand_policy_path(
            topo.graph(), routes, Direction::kDownlink,
            topo.access_switch(bs),
            std::vector<NodeId>{topo.core_instance(bs % 4, 0).node},
            topo.gateway(), topo.internet());
        eng.install(path, bs, topo.bs_prefix(bs), std::nullopt);
      }
    });
  }
  std::thread poller([&] {
    // The harness-side read mix: these raced the worker enqueues before
    // the fix (iterating channels_ mid-rehash).
    while (!done.load(std::memory_order_acquire)) {
      (void)mirror.pending();
      (void)mirror.switches();
      (void)mirror.fault_stats();
      (void)mirror.switch_ids();
    }
  });
  for (auto& th : installers) th.join();
  done.store(true, std::memory_order_release);
  poller.join();

  EXPECT_GT(mirror.pending(), 0u);
  EXPECT_GT(mirror.sync(), 0u);
  EXPECT_EQ(mirror.pending(), 0u);
  // Convergence check: every replica table matches the engine's model.
  for (const NodeId sw : mirror.switch_ids()) {
    const SwitchTable& truth = eng.table(sw);
    const SwitchTable& replica = mirror.agent(sw)->table();
    ASSERT_EQ(replica.rule_count(), truth.rule_count()) << sw.value();
  }
}

RuleOp default_op(NodeId sw, std::uint16_t tag,
                  Direction dir = Direction::kUplink) {
  RuleOp op;
  op.kind = RuleOp::Kind::kAddDefault;
  op.sw = sw;
  op.dir = dir;
  op.in = InPortSpec::any();
  op.tag = PolicyTag(tag);
  op.action = RuleAction{NodeId(3), std::nullopt, false};
  return op;
}

// --- Agent robustness: malformed frames must be dropped and counted, never
// crash, and every frame must be accounted for exactly once. ---

TEST(Robustness, TruncatedFlowModsAreDroppedAndCounted) {
  SwitchAgent agent(NodeId(5));
  const auto frame = encode_flow_mod(FlowMod{1, default_op(NodeId(5), 7)});
  std::uint64_t expect_rejected = 0;
  for (std::size_t len = 0; len < frame.size(); ++len) {
    const auto replies = agent.handle(std::span(frame.data(), len));
    EXPECT_TRUE(replies.empty()) << len;
    EXPECT_EQ(agent.applied(), 0u) << len;
    EXPECT_EQ(agent.rejected(), ++expect_rejected) << len;
  }
  // The intact frame still applies: the rejections left no residue.
  (void)agent.handle(frame);
  EXPECT_EQ(agent.applied(), 1u);
  EXPECT_EQ(agent.table().rule_count(), 1u);
}

TEST(Robustness, PayloadBitFlipsAreAccountedExactlyOnce) {
  // Flips confined to the flow-mod payload (header intact) must resolve to
  // exactly one of applied/rejected per frame: either the op still decodes
  // and applies (possibly with altered fields), or it is dropped and counted.
  SwitchAgent agent(NodeId(5));
  const auto base = encode_flow_mod(FlowMod{1, default_op(NodeId(5), 9)});
  Rng rng(41);
  std::uint64_t decodes_broken = 0;
  for (int i = 0; i < 4000; ++i) {
    auto frame = base;
    const auto flips = 1 + rng.next_below(4);
    for (std::uint64_t k = 0; k < flips; ++k) {
      const auto off = 8 + rng.next_below(frame.size() - 8);
      frame[off] ^= static_cast<std::uint8_t>(1u << rng.next_below(8));
    }
    const auto before = agent.applied() + agent.rejected();
    const auto replies = agent.handle(frame);
    EXPECT_TRUE(replies.empty()) << i;
    ASSERT_EQ(agent.applied() + agent.rejected(), before + 1) << i;
    if (!decode_flow_mod(frame)) ++decodes_broken;
  }
  // The fuzz actually produced malformed frames, not just field mutations.
  EXPECT_GT(decodes_broken, 100u);
  EXPECT_GT(agent.rejected(), 0u);
}

TEST(Robustness, ArbitraryBitFlipsNeverCrashAndAlwaysAccount) {
  // Flips anywhere, header included: a frame either advances a counter or
  // elicits at least one reply (flipping the type byte can legitimately turn
  // a flow-mod into e.g. an echo request).
  SwitchAgent agent(NodeId(5));
  const auto base = encode_flow_mod(FlowMod{1, default_op(NodeId(5), 3)});
  Rng rng(42);
  for (int i = 0; i < 4000; ++i) {
    auto frame = base;
    const auto flips = 1 + rng.next_below(6);
    for (std::uint64_t k = 0; k < flips; ++k)
      frame[rng.next_below(frame.size())] ^=
          static_cast<std::uint8_t>(1u << rng.next_below(8));
    const auto before = agent.applied() + agent.rejected();
    const auto replies = agent.handle(frame);
    EXPECT_TRUE(agent.applied() + agent.rejected() == before + 1 ||
                !replies.empty())
        << i;
  }
  EXPECT_GT(agent.rejected(), 0u);
}

TEST(Robustness, RandomGarbageFramesNeverCrash) {
  SwitchAgent agent(NodeId(5));
  Rng rng(43);
  for (int i = 0; i < 2000; ++i) {
    std::vector<std::uint8_t> frame(rng.next_below(64));
    for (auto& b : frame)
      b = static_cast<std::uint8_t>(rng.next_below(256));
    const auto before = agent.applied() + agent.rejected();
    const auto replies = agent.handle(frame);
    EXPECT_TRUE(agent.applied() + agent.rejected() == before + 1 ||
                !replies.empty())
        << i;
  }
  EXPECT_EQ(agent.applied(), 0u);  // garbage never installs rules
  EXPECT_GT(agent.rejected(), 1900u);
}

// --- Fault layer: the reliable transport must converge to the exact same
// agent state over a lossy wire as over a clean one. ---

struct FaultProfile {
  const char* name;
  FaultSpec spec;
};

const FaultProfile kFaultProfiles[] = {
    {"drop", {.drop = 0.30}},
    {"delay+reorder", {.delay = 0.25, .reorder = 0.25}},
    {"duplicate", {.duplicate = 0.35}},
    {"corrupt", {.corrupt = 0.20}},
    {"mixed",
     {.drop = 0.15,
      .delay = 0.10,
      .reorder = 0.20,
      .duplicate = 0.15,
      .corrupt = 0.10}},
};

TEST(FaultLayer, LossyWireConvergesToCleanChannelState) {
  for (const auto& profile : kFaultProfiles) {
    SCOPED_TRACE(profile.name);
    ControlChannel faulty(NodeId(6));
    ControlChannel clean(NodeId(6));
    faulty.set_faults(profile.spec, 0xFEEDu);

    std::uint32_t xid = 1;
    for (std::uint16_t tag = 1; tag <= 60; ++tag) {
      const auto dir =
          tag % 2 ? Direction::kUplink : Direction::kDownlink;
      const auto frame =
          encode_flow_mod(FlowMod{xid++, default_op(NodeId(6), tag, dir)});
      faulty.send(frame);
      clean.send(frame);
    }
    faulty.send(encode_control(MsgType::kBarrierRequest, 0x7777));
    clean.send(encode_control(MsgType::kBarrierRequest, 0x7777));

    const auto fb = faulty.flush();
    const auto cb = clean.flush();
    EXPECT_EQ(fb, cb);  // barrier comes back exactly once, after the mods
    EXPECT_EQ(faulty.pending(), 0u);

    // Exactly-once application: duplicates suppressed (a re-applied
    // add_default would throw and skew these counters), drops retransmitted.
    EXPECT_EQ(faulty.agent().applied(), clean.agent().applied());
    EXPECT_EQ(faulty.agent().applied(), 60u);
    EXPECT_EQ(faulty.agent().rejected(), faulty.fault_stats().corrupts);
    EXPECT_EQ(faulty.agent().table().rule_count(),
              clean.agent().table().rule_count());

    // The profile's faults actually fired.
    const auto& s = faulty.fault_stats();
    EXPECT_GT(s.injected(), 0u);
    if (profile.spec.drop > 0) {
      EXPECT_GT(s.drops, 0u);
    }
    if (profile.spec.delay > 0) {
      EXPECT_GT(s.delays, 0u);
    }
    if (profile.spec.reorder > 0) {
      EXPECT_GT(s.reorders, 0u);
    }
    if (profile.spec.duplicate > 0) {
      EXPECT_GT(s.duplicates, 0u);
    }
    if (profile.spec.corrupt > 0) {
      EXPECT_GT(s.corrupts, 0u);
    }
  }
}

TEST(FaultLayer, CleanChannelHasZeroFaultFootprint) {
  ControlChannel chan(NodeId(6));
  for (std::uint16_t tag = 1; tag <= 10; ++tag)
    chan.send(encode_flow_mod(FlowMod{tag, default_op(NodeId(6), tag)}));
  chan.flush();
  EXPECT_EQ(chan.agent().applied(), 10u);
  EXPECT_EQ(chan.fault_stats().injected(), 0u);
  EXPECT_EQ(chan.fault_stats().retransmits, 0u);
  EXPECT_EQ(chan.fault_stats().rounds, 0u);
}

TEST(FaultLayer, PathologicalDropRateStillTerminates) {
  // At 95% drop the retransmit loop would take ages to converge by luck;
  // the kMaxFaultRounds cap forces a clean final round so flush() always
  // terminates with everything delivered.
  ControlChannel chan(NodeId(6));
  chan.set_faults({.drop = 0.95}, 0xD00Du);
  for (std::uint16_t tag = 1; tag <= 20; ++tag)
    chan.send(encode_flow_mod(FlowMod{tag, default_op(NodeId(6), tag)}));
  chan.send(encode_control(MsgType::kBarrierRequest, 1));
  const auto barriers = chan.flush();
  EXPECT_EQ(barriers, (std::vector<std::uint32_t>{1}));
  EXPECT_EQ(chan.agent().applied(), 20u);
  EXPECT_EQ(chan.pending(), 0u);
  const auto& s = chan.fault_stats();
  EXPECT_GT(s.retransmits, 0u);
  EXPECT_LE(s.rounds, static_cast<std::uint64_t>(ControlChannel::kMaxFaultRounds));
}

TEST(FaultLayer, MirrorSyncConvergesOverLossyWire) {
  // The Equivalence workload again, but subscribed through a Mirror with a
  // hostile wire: sync() must still reconstruct tables identical to the
  // engine's, tolerating only the counted corrupt-copy rejections.
  CellularTopology topo({.k = 4, .seed = 13});
  RoutingOracle routes(topo.graph());
  AggregationEngine eng(topo.graph(), {});
  Mirror mirror(eng);
  mirror.set_faults({.drop = 0.20,
                     .delay = 0.10,
                     .reorder = 0.20,
                     .duplicate = 0.15,
                     .corrupt = 0.10},
                    0xACEu);

  std::vector<PathId> handles;
  std::vector<std::optional<PolicyTag>> hints(6);
  for (std::uint32_t c = 0; c < 6; ++c) {
    const auto& inst = topo.core_instance(c % 4, c / 4);
    for (std::uint32_t bs = 0; bs < topo.num_base_stations(); bs += 3) {
      const auto path = expand_policy_path(
          topo.graph(), routes, Direction::kDownlink, topo.access_switch(bs),
          std::vector<NodeId>{inst.node}, topo.gateway(), topo.internet());
      const auto r = eng.install(path, bs, topo.bs_prefix(bs), hints[c]);
      hints[c] = r.tag;
      handles.push_back(r.path);
    }
  }
  for (std::size_t i = 0; i < handles.size(); i += 2) eng.remove(handles[i]);

  EXPECT_NO_THROW(mirror.sync());
  EXPECT_EQ(mirror.pending(), 0u);
  EXPECT_GT(mirror.fault_stats().injected(), 0u);
  for (const auto sw : mirror.switch_ids()) {
    const SwitchTable& truth = eng.table(sw);
    const SwitchTable& replica = mirror.agent(sw)->table();
    ASSERT_EQ(replica.rule_count(), truth.rule_count()) << sw.value();
    EXPECT_EQ(replica.type1_count(), truth.type1_count());
    EXPECT_EQ(replica.type2_count(), truth.type2_count());
    EXPECT_EQ(replica.type3_count(), truth.type3_count());
  }
}

// --- FrameAssembler: stream reassembly fuzz ----------------------------------

// A valid multi-frame stream mixing every frame shape the serving plane
// speaks, plus the frame boundaries for cross-checking reassembly.
std::vector<std::uint8_t> sample_stream(std::vector<std::size_t>* bounds) {
  std::vector<std::uint8_t> stream;
  auto mark = [&] { bounds->push_back(stream.size()); };
  encode_packet_in_into(stream, {.xid = 1,
                                 .kind = PacketInMsg::Kind::kFetchClassifiers,
                                 .ue = UeId(7),
                                 .bs = 3});
  mark();
  {
    PacketInReply reply;
    reply.xid = 2;
    reply.kind = PacketInMsg::Kind::kPolicyPath;
    reply.tag = PolicyTag(513);
    reply.digest = 0x1122334455667788ull;
    encode_packet_in_reply_into(stream, reply);
  }
  mark();
  const auto echo = encode_control(MsgType::kEchoRequest, 3);
  stream.insert(stream.end(), echo.begin(), echo.end());
  mark();
  const auto mod = encode_flow_mod(FlowMod{4, sample_op()});
  stream.insert(stream.end(), mod.begin(), mod.end());
  mark();
  {
    ServerStatsMsg stats;
    stats.xid = 5;
    stats.fingerprint = 0xABCDEF0123456789ull;
    stats.packet_ins = 42;
    encode_server_stats_into(stream, stats);
  }
  mark();
  return stream;
}

// Collects every complete frame currently decodable, copied out.
std::vector<std::vector<std::uint8_t>> drain_frames(FrameAssembler& fa) {
  std::vector<std::vector<std::uint8_t>> frames;
  std::span<const std::uint8_t> frame;
  while (fa.next(frame) == FrameAssembler::Status::kFrame)
    frames.emplace_back(frame.begin(), frame.end());
  return frames;
}

// Real sockets deliver any fragmentation; the assembler must reproduce the
// exact frame sequence no matter where the stream is cut.  Splits the
// sample stream at EVERY byte boundary (two fragments), and also feeds it
// one byte at a time.
TEST(FrameAssembler, ReassemblesAcrossEveryByteBoundary) {
  std::vector<std::size_t> bounds;
  const auto stream = sample_stream(&bounds);

  // Reference frames: whole stream in one shot.
  FrameAssembler ref;
  ref.feed(stream);
  const auto expected = drain_frames(ref);
  ASSERT_EQ(expected.size(), bounds.size());
  for (std::size_t f = 0; f < bounds.size(); ++f) {
    const std::size_t begin = f == 0 ? 0 : bounds[f - 1];
    EXPECT_EQ(expected[f],
              std::vector<std::uint8_t>(stream.begin() + begin,
                                        stream.begin() + bounds[f]));
  }

  for (std::size_t cut = 0; cut <= stream.size(); ++cut) {
    FrameAssembler fa;
    fa.feed(std::span(stream).first(cut));
    auto frames = drain_frames(fa);
    fa.feed(std::span(stream).subspan(cut));
    auto rest = drain_frames(fa);
    frames.insert(frames.end(), rest.begin(), rest.end());
    ASSERT_EQ(frames, expected) << "cut at byte " << cut;
    EXPECT_EQ(fa.buffered(), 0u);
  }

  FrameAssembler trickle;
  std::vector<std::vector<std::uint8_t>> frames;
  for (const std::uint8_t byte : stream) {
    trickle.feed(std::span(&byte, 1));
    auto got = drain_frames(trickle);
    frames.insert(frames.end(), got.begin(), got.end());
  }
  EXPECT_EQ(frames, expected);
}

// Random-sized fragments over a longer randomized stream.
TEST(FrameAssembler, ReassemblesRandomFragmentation) {
  Rng rng(11);
  std::vector<std::uint8_t> stream;
  std::size_t expected_frames = 0;
  for (int i = 0; i < 200; ++i, ++expected_frames) {
    switch (rng.next_below(3)) {
      case 0:
        encode_packet_in_into(
            stream, {.xid = static_cast<std::uint32_t>(i),
                     .kind = PacketInMsg::Kind::kPolicyPath,
                     .ue = UeId(static_cast<std::uint32_t>(rng.next_below(1000))),
                     .bs = static_cast<std::uint32_t>(rng.next_below(16)),
                     .clause = ClauseId(static_cast<std::uint32_t>(
                         rng.next_below(32)))});
        break;
      case 1: {
        PacketInReply reply;
        reply.xid = static_cast<std::uint32_t>(i);
        reply.digest = rng.next_u64();
        encode_packet_in_reply_into(stream, reply);
        break;
      }
      default: {
        const auto bytes = encode_control(MsgType::kEchoReply,
                                          static_cast<std::uint32_t>(i));
        stream.insert(stream.end(), bytes.begin(), bytes.end());
      }
    }
  }
  FrameAssembler fa;
  std::size_t fed = 0;
  std::size_t frames = 0;
  std::uint32_t next_xid = 0;
  while (fed < stream.size()) {
    const std::size_t n =
        std::min<std::size_t>(1 + rng.next_below(37), stream.size() - fed);
    fa.feed(std::span(stream).subspan(fed, n));
    fed += n;
    for (const auto& frame : drain_frames(fa)) {
      const auto h = peek_header(frame);
      ASSERT_TRUE(h);
      EXPECT_EQ(h->xid, next_xid++);  // in-order, none lost or duplicated
      ++frames;
    }
  }
  EXPECT_EQ(frames, expected_frames);
  EXPECT_EQ(fa.buffered(), 0u);
}

// Broken framing is unrecoverable for a length-prefixed stream: wrong
// version or a length below the header size must report kBad (transport
// drops the connection), never resync or spin.
TEST(FrameAssembler, ReportsBadFraming) {
  {
    FrameAssembler fa;
    std::vector<std::uint8_t> bytes(kHeaderSize, 0);
    bytes[0] = MsgHeader::kVersion + 1;
    fa.feed(bytes);
    std::span<const std::uint8_t> frame;
    EXPECT_EQ(fa.next(frame), FrameAssembler::Status::kBad);
  }
  {
    FrameAssembler fa;
    std::vector<std::uint8_t> bytes;
    put_header(bytes, MsgType::kEchoRequest, kHeaderSize - 1, 9);
    fa.feed(bytes);
    std::span<const std::uint8_t> frame;
    EXPECT_EQ(fa.next(frame), FrameAssembler::Status::kBad);
    EXPECT_EQ(fa.next(frame), FrameAssembler::Status::kBad);  // stays bad
  }
}

// The serving-plane payload codecs round-trip and reject malformed bytes.
TEST(PacketInCodec, RoundTripsAndValidates) {
  const PacketInMsg msg{.xid = 77,
                        .kind = PacketInMsg::Kind::kPolicyPath,
                        .ue = UeId(123456),
                        .bs = 9,
                        .clause = ClauseId(31)};
  const auto bytes = encode_packet_in(msg);
  EXPECT_EQ(bytes.size(), kPacketInSize);
  const auto back = decode_packet_in(bytes);
  ASSERT_TRUE(back);
  EXPECT_EQ(*back, msg);

  auto bad_kind = bytes;
  bad_kind[8] = 2;
  EXPECT_FALSE(decode_packet_in(bad_kind));

  PacketInReply reply;
  reply.xid = 78;
  reply.ok = false;
  reply.kind = PacketInMsg::Kind::kPolicyPath;
  reply.tag = PolicyTag{};  // invalid tag must survive the round-trip
  reply.classifier_count = 4;
  reply.digest = 0xFEEDFACECAFEBEEFull;
  const auto rbytes = encode_packet_in_reply(reply);
  const auto rback = decode_packet_in_reply(rbytes);
  ASSERT_TRUE(rback);
  EXPECT_EQ(*rback, reply);
  EXPECT_FALSE(rback->tag.valid());

  ServerStatsMsg stats;
  stats.xid = 80;
  stats.fingerprint = 0x123456789ABCDEF0ull;
  stats.packet_ins = 1;
  stats.replies = 2;
  stats.drops = 3;
  const auto sback = decode_server_stats(encode_server_stats(stats));
  ASSERT_TRUE(sback);
  EXPECT_EQ(*sback, stats);
}

}  // namespace
}  // namespace softcell
