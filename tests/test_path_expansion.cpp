#include "core/path.hpp"

#include <gtest/gtest.h>

#include "topo/cellular.hpp"

namespace softcell {
namespace {

class PathExpansionTest : public ::testing::Test {
 protected:
  PathExpansionTest() : topo_({.k = 4, .seed = 2}), routes_(topo_.graph()) {}

  ExpandedPath expand(Direction dir, std::uint32_t bs,
                      std::vector<NodeId> mbs) {
    return expand_policy_path(topo_.graph(), routes_, dir,
                              topo_.access_switch(bs), mbs, topo_.gateway(),
                              topo_.internet());
  }

  CellularTopology topo_;
  RoutingOracle routes_;
};

TEST_F(PathExpansionTest, UplinkEndsAtInternet) {
  const auto p = expand(Direction::kUplink, 0, {});
  ASSERT_FALSE(p.fabric.empty());
  EXPECT_EQ(p.fabric.back().sw, topo_.gateway());
  EXPECT_EQ(p.fabric.back().out_to, topo_.internet());
  EXPECT_TRUE(p.access_tail.empty());  // uplink needs no access-switch rules
}

TEST_F(PathExpansionTest, DownlinkStartsAtGateway) {
  const auto p = expand(Direction::kDownlink, 0, {});
  ASSERT_FALSE(p.fabric.empty());
  EXPECT_EQ(p.fabric.front().sw, topo_.gateway());
  EXPECT_EQ(p.dir, Direction::kDownlink);
}

TEST_F(PathExpansionTest, HopsAreLinkConsistent) {
  const auto& mb1 = topo_.pod_instance(0, 0);
  const auto& mb2 = topo_.core_instance(1, 0);
  for (Direction dir : {Direction::kUplink, Direction::kDownlink}) {
    const auto p = expand(dir, 5, {mb1.node, mb2.node});
    std::vector<PathHop> all(p.fabric);
    all.insert(all.end(), p.access_tail.begin(), p.access_tail.end());
    for (const auto& h : all) {
      const auto& nbrs = topo_.graph().neighbors(h.sw);
      EXPECT_NE(std::find(nbrs.begin(), nbrs.end(), h.out_to), nbrs.end())
          << "hop at " << h.sw.value() << " -> " << h.out_to.value();
    }
  }
}

TEST_F(PathExpansionTest, MiddleboxDetourCreatesTwoHopsAtHost) {
  const auto& mb = topo_.pod_instance(2, 0);
  const auto p = expand(Direction::kUplink, 0, {mb.node});
  int to_mb = 0, from_mb = 0;
  for (const auto& h : p.fabric) {
    if (h.out_to == mb.node) {
      ++to_mb;
      EXPECT_EQ(h.sw, mb.host_switch);
    }
    if (h.in_from == mb.node) {
      ++from_mb;
      EXPECT_EQ(h.sw, mb.host_switch);
      EXPECT_TRUE(h.from_middlebox);
    }
  }
  EXPECT_EQ(to_mb, 1);
  EXPECT_EQ(from_mb, 1);
}

TEST_F(PathExpansionTest, DownlinkReversesMiddleboxOrder) {
  const auto& a = topo_.pod_instance(0, 0);
  const auto& b = topo_.core_instance(1, 0);
  const auto up = expand(Direction::kUplink, 0, {a.node, b.node});
  const auto down = expand(Direction::kDownlink, 0, {a.node, b.node});
  // Uplink visits a before b; downlink visits b before a.
  const auto first_visit = [](const ExpandedPath& p, NodeId mb) {
    for (std::size_t i = 0; i < p.fabric.size(); ++i)
      if (p.fabric[i].out_to == mb) return i;
    return p.fabric.size();
  };
  EXPECT_LT(first_visit(up, a.node), first_visit(up, b.node));
  EXPECT_LT(first_visit(down, b.node), first_visit(down, a.node));
}

TEST_F(PathExpansionTest, DownlinkTailCoversRingTransit) {
  // A base station deep in its ring needs location rules on the access
  // switches between the aggregation switch and itself.
  // Station index 4 sits 5 hops into the 10-station ring.
  const auto p = expand(Direction::kDownlink, 4, {});
  EXPECT_FALSE(p.access_tail.empty());
  for (const auto& h : p.access_tail)
    EXPECT_EQ(topo_.graph().kind(h.sw), NodeKind::kAccessSwitch);
  // The last tail hop delivers to the destination access switch.
  EXPECT_EQ(p.access_tail.back().out_to, topo_.access_switch(4));
}

TEST_F(PathExpansionTest, RingHeadStationHasNoTail) {
  // Station 0 is adjacent to the aggregation switch.
  const auto p = expand(Direction::kDownlink, 0, {});
  EXPECT_TRUE(p.access_tail.empty());
  EXPECT_EQ(p.fabric.back().out_to, topo_.access_switch(0));
}

TEST_F(PathExpansionTest, NoRuleHopsAtMiddleboxNodes) {
  const auto& mb = topo_.core_instance(0, 1);
  for (Direction dir : {Direction::kUplink, Direction::kDownlink}) {
    const auto p = expand(dir, 7, {mb.node});
    for (const auto& h : p.fabric)
      EXPECT_NE(topo_.graph().kind(h.sw), NodeKind::kMiddlebox);
  }
}

TEST_F(PathExpansionTest, ConsecutiveHopsChain) {
  const auto& mb = topo_.pod_instance(1, 1);
  const auto p = expand(Direction::kUplink, 11, {mb.node});
  for (std::size_t i = 0; i + 1 < p.fabric.size(); ++i) {
    const auto& cur = p.fabric[i];
    const auto& nxt = p.fabric[i + 1];
    // Either directly linked switches, or a middlebox bounce at one switch.
    if (cur.out_to == nxt.sw) {
      EXPECT_EQ(nxt.in_from, cur.sw);
    } else {
      // bounce: cur sends to a middlebox, nxt is at the same switch from it
      EXPECT_EQ(topo_.graph().kind(cur.out_to), NodeKind::kMiddlebox);
      EXPECT_EQ(nxt.sw, cur.sw);
      EXPECT_EQ(nxt.in_from, cur.out_to);
    }
  }
}

TEST_F(PathExpansionTest, SameHostConsecutiveMiddleboxes) {
  // Two middleboxes on the same host switch: the path must bounce twice at
  // that switch without an intermediate segment.
  const auto& m0 = topo_.pod_instance(0, 0);
  // Find another type instance on the same host, if the seed placed one;
  // otherwise use the same instance's host with a core instance (skip).
  const auto p = expand(Direction::kUplink, 0, {m0.node, m0.node});
  // Visiting the same middlebox twice is degenerate but must not crash and
  // must produce two detours.
  int detours = 0;
  for (const auto& h : p.fabric)
    if (h.out_to == m0.node) ++detours;
  EXPECT_EQ(detours, 2);
}

}  // namespace
}  // namespace softcell
