#include "policy/policy.hpp"

#include <gtest/gtest.h>

namespace softcell {
namespace {

SubscriberProfile home_user() {
  SubscriberProfile p;
  p.provider = 0;
  p.plan = BillingPlan::kSilver;
  p.device = DeviceClass::kSmartphone;
  return p;
}

TEST(Predicate, Atoms) {
  const auto p = home_user();
  EXPECT_TRUE(Predicate::any().matches(p, AppType::kWeb));
  EXPECT_TRUE(Predicate::provider_is(0).matches(p, AppType::kWeb));
  EXPECT_FALSE(Predicate::provider_is(1).matches(p, AppType::kWeb));
  EXPECT_TRUE(Predicate::plan_is(BillingPlan::kSilver).matches(p, AppType::kWeb));
  EXPECT_FALSE(Predicate::plan_is(BillingPlan::kGold).matches(p, AppType::kWeb));
  EXPECT_TRUE(Predicate::app_is(AppType::kVideo).matches(p, AppType::kVideo));
  EXPECT_FALSE(Predicate::app_is(AppType::kVideo).matches(p, AppType::kWeb));
  EXPECT_FALSE(Predicate::roaming().matches(p, AppType::kWeb));
  EXPECT_FALSE(Predicate::over_cap().matches(p, AppType::kWeb));
}

TEST(Predicate, BooleanCombinators) {
  const auto p = home_user();
  const auto silver_video = Predicate::plan_is(BillingPlan::kSilver) &&
                            Predicate::app_is(AppType::kVideo);
  EXPECT_TRUE(silver_video.matches(p, AppType::kVideo));
  EXPECT_FALSE(silver_video.matches(p, AppType::kWeb));
  const auto either = Predicate::provider_is(9) || Predicate::provider_is(0);
  EXPECT_TRUE(either.matches(p, AppType::kWeb));
  EXPECT_TRUE((!Predicate::roaming()).matches(p, AppType::kWeb));
}

TEST(Predicate, DependsOnApp) {
  EXPECT_FALSE(Predicate::provider_is(0).depends_on_app());
  EXPECT_TRUE(Predicate::app_is(AppType::kWeb).depends_on_app());
  EXPECT_TRUE((Predicate::provider_is(0) && Predicate::app_is(AppType::kWeb))
                  .depends_on_app());
  EXPECT_TRUE((!Predicate::app_is(AppType::kWeb)).depends_on_app());
}

TEST(Predicate, ToStringMentionsStructure) {
  const auto pred = Predicate::provider_is(0) && Predicate::app_is(AppType::kVoip);
  const auto s = pred.to_string();
  EXPECT_NE(s.find("provider=0"), std::string::npos);
  EXPECT_NE(s.find("voip"), std::string::npos);
  EXPECT_NE(s.find("&&"), std::string::npos);
}

TEST(AppMapping, PortsRoundTrip) {
  for (AppType a : {AppType::kWeb, AppType::kVideo, AppType::kVoip,
                    AppType::kM2mTelemetry}) {
    for (const auto port : ports_of_app(a)) EXPECT_EQ(app_from_dst_port(port), a);
  }
  EXPECT_EQ(app_from_dst_port(22), AppType::kOther);
  EXPECT_TRUE(ports_of_app(AppType::kOther).empty());
}

TEST(ServicePolicy, HighestPriorityClauseWins) {
  ServicePolicy pol;
  pol.add_clause(1, Predicate::any(), ServiceAction{true, {}, QosClass::kBestEffort});
  const auto hi = pol.add_clause(
      9, Predicate::app_is(AppType::kVoip),
      ServiceAction{true, {mb::kEchoCanceller}, QosClass::kBestEffort});
  const auto* c = pol.match(home_user(), AppType::kVoip);
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->id, hi);
  const auto* d = pol.match(home_user(), AppType::kWeb);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->priority, 1u);
}

TEST(ServicePolicy, NoMatchReturnsNull) {
  ServicePolicy pol;
  pol.add_clause(5, Predicate::provider_is(3),
                 ServiceAction{true, {}, QosClass::kBestEffort});
  EXPECT_EQ(pol.match(home_user(), AppType::kWeb), nullptr);
}

TEST(ServicePolicy, ClauseLookupById) {
  ServicePolicy pol;
  const auto id = pol.add_clause(5, Predicate::any(),
                                 ServiceAction{true, {mb::kFirewall}});
  EXPECT_EQ(pol.clause(id).action.middleboxes.size(), 1u);
  EXPECT_THROW((void)pol.clause(ClauseId(99)), std::out_of_range);
}

// --- the Table 1 example policy ---------------------------------------------

TEST(Table1Policy, PartnerRoamersGoThroughFirewall) {
  const auto pol = make_table1_policy();
  SubscriberProfile roamer = home_user();
  roamer.provider = 1;
  const auto* c = pol.match(roamer, AppType::kWeb);
  ASSERT_NE(c, nullptr);
  EXPECT_TRUE(c->action.allow);
  ASSERT_EQ(c->action.middleboxes.size(), 1u);
  EXPECT_EQ(c->action.middleboxes[0], mb::kFirewall);
}

TEST(Table1Policy, UnknownCarriersAreDropped) {
  const auto pol = make_table1_policy();
  SubscriberProfile outsider = home_user();
  outsider.provider = 7;
  const auto* c = pol.match(outsider, AppType::kWeb);
  ASSERT_NE(c, nullptr);
  EXPECT_FALSE(c->action.allow);
}

TEST(Table1Policy, SilverVideoGetsTranscoderAfterFirewall) {
  const auto pol = make_table1_policy();
  const auto* c = pol.match(home_user(), AppType::kVideo);
  ASSERT_NE(c, nullptr);
  ASSERT_EQ(c->action.middleboxes.size(), 2u);
  EXPECT_EQ(c->action.middleboxes[0], mb::kFirewall);
  EXPECT_EQ(c->action.middleboxes[1], mb::kTranscoder);
}

TEST(Table1Policy, GoldVideoFallsToDefaultFirewallOnly) {
  const auto pol = make_table1_policy();
  SubscriberProfile gold = home_user();
  gold.plan = BillingPlan::kGold;
  const auto* c = pol.match(gold, AppType::kVideo);
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->action.middleboxes.size(), 1u);  // just the firewall default
}

TEST(Table1Policy, VoipGetsEchoCancellation) {
  const auto pol = make_table1_policy();
  const auto* c = pol.match(home_user(), AppType::kVoip);
  ASSERT_NE(c, nullptr);
  ASSERT_EQ(c->action.middleboxes.size(), 2u);
  EXPECT_EQ(c->action.middleboxes[1], mb::kEchoCanceller);
}

TEST(Table1Policy, FleetTrackerGetsLowLatency) {
  const auto pol = make_table1_policy();
  SubscriberProfile tracker = home_user();
  tracker.device = DeviceClass::kM2mFleetTracker;
  const auto* c = pol.match(tracker, AppType::kM2mTelemetry);
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->action.qos, QosClass::kLowLatency);
}

TEST(Table1Policy, EveryHomeAppHitsSomeClauseWithFirewallFirst) {
  const auto pol = make_table1_policy();
  for (AppType a : {AppType::kWeb, AppType::kVideo, AppType::kVoip,
                    AppType::kM2mTelemetry, AppType::kOther}) {
    const auto* c = pol.match(home_user(), a);
    ASSERT_NE(c, nullptr) << to_string(a);
    EXPECT_TRUE(c->action.allow);
    ASSERT_FALSE(c->action.middleboxes.empty());
    EXPECT_EQ(c->action.middleboxes[0], mb::kFirewall);
  }
}

TEST(Table1Policy, MiddleboxNames) {
  EXPECT_EQ(mb::name(mb::kFirewall), "firewall");
  EXPECT_EQ(mb::name(mb::kTranscoder), "transcoder");
}

}  // namespace
}  // namespace softcell
