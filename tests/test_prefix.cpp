#include "packet/prefix.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace softcell {
namespace {

TEST(Prefix, MasksHostBits) {
  const Prefix p(0x0A0B0C0Du, 16);
  EXPECT_EQ(p.addr(), 0x0A0B0000u);
  EXPECT_EQ(p.len(), 16);
}

TEST(Prefix, ZeroLengthCoversEverything) {
  const Prefix p(0xFFFFFFFFu, 0);
  EXPECT_EQ(p.addr(), 0u);
  EXPECT_TRUE(p.contains(0u));
  EXPECT_TRUE(p.contains(0xFFFFFFFFu));
  EXPECT_FALSE(p.sibling().has_value());
  EXPECT_FALSE(p.parent().has_value());
}

TEST(Prefix, ContainsAddress) {
  const Prefix p(0x0A000000u, 8);
  EXPECT_TRUE(p.contains(0x0A123456u));
  EXPECT_FALSE(p.contains(0x0B000000u));
}

TEST(Prefix, ContainsPrefixIsReflexiveAndAntisymmetric) {
  const Prefix outer(0x0A000000u, 8);
  const Prefix inner(0x0A0B0000u, 16);
  EXPECT_TRUE(outer.contains(outer));
  EXPECT_TRUE(outer.contains(inner));
  EXPECT_FALSE(inner.contains(outer));
}

TEST(Prefix, SiblingIsInvolution) {
  const Prefix p(0x0A0B0000u, 16);
  const auto s = p.sibling();
  ASSERT_TRUE(s);
  EXPECT_NE(*s, p);
  EXPECT_EQ(s->sibling().value(), p);
}

TEST(Prefix, SiblingsShareParent) {
  const Prefix p(0xC0A80100u, 24);
  const auto s = p.sibling();
  ASSERT_TRUE(s);
  EXPECT_EQ(p.parent(), s->parent());
  EXPECT_TRUE(p.parent()->contains(p));
  EXPECT_TRUE(p.parent()->contains(*s));
}

TEST(Prefix, ContiguousMatchesSiblingDefinition) {
  const Prefix p(0x0A000000u, 10);
  EXPECT_TRUE(Prefix::contiguous(p, *p.sibling()));
  EXPECT_FALSE(Prefix::contiguous(p, p));
  EXPECT_FALSE(Prefix::contiguous(p, Prefix(0x0A000000u, 11)));
  // Adjacent in address space but not siblings (would not merge cleanly).
  const Prefix a(0x0A400000u, 10);  // 10.64/10 -- sibling of 10.0/10
  const Prefix b(0x0A800000u, 10);  // 10.128/10 -- adjacent to a, not sibling
  EXPECT_FALSE(Prefix::contiguous(a, b));
}

TEST(Prefix, Host32Prefix) {
  const Prefix p(0x0A0B0C0Du, 32);
  EXPECT_TRUE(p.contains(0x0A0B0C0Du));
  EXPECT_FALSE(p.contains(0x0A0B0C0Cu));
  ASSERT_TRUE(p.sibling());
  EXPECT_EQ(p.sibling()->addr(), 0x0A0B0C0Cu);
}

TEST(Prefix, ToString) {
  EXPECT_EQ(Prefix(0x0A000000u, 8).to_string(), "10.0.0.0/8");
  EXPECT_EQ(to_dotted(0xC0A80101u), "192.168.1.1");
}

// Property: for random prefixes, parent contains both siblings and exactly
// covers their union (checked on sampled addresses).
TEST(PrefixProperty, ParentCoversExactlySiblingUnion) {
  Rng rng(42);
  for (int i = 0; i < 2000; ++i) {
    const auto len = static_cast<std::uint8_t>(rng.next_in(1, 32));
    const Prefix p(static_cast<Ipv4Addr>(rng.next_u64()), len);
    const Prefix s = *p.sibling();
    const Prefix par = *p.parent();
    for (int j = 0; j < 8; ++j) {
      const auto a = static_cast<Ipv4Addr>(rng.next_u64());
      EXPECT_EQ(par.contains(a), p.contains(a) || s.contains(a));
    }
  }
}

TEST(PrefixProperty, OrderingGroupsNestedPrefixes) {
  // With (addr, len) ordering, a prefix sorts before everything nested in it.
  Rng rng(7);
  for (int i = 0; i < 2000; ++i) {
    const auto len = static_cast<std::uint8_t>(rng.next_in(1, 31));
    const Prefix outer(static_cast<Ipv4Addr>(rng.next_u64()), len);
    const auto inner_len = static_cast<std::uint8_t>(rng.next_in(len + 1, 32));
    const Prefix inner(
        outer.addr() |
            (static_cast<Ipv4Addr>(rng.next_u64()) & ~(~0u << (32 - len))),
        inner_len);
    ASSERT_TRUE(outer.contains(inner));
    EXPECT_TRUE(outer < inner || outer == inner);
  }
}

}  // namespace
}  // namespace softcell
