#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace softcell {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123), c(124);
  for (int i = 0; i < 100; ++i) {
    const auto va = a.next_u64();
    EXPECT_EQ(va, b.next_u64());
    (void)c;
  }
  EXPECT_NE(Rng(123).next_u64(), Rng(124).next_u64());
}

TEST(Rng, NextBelowInRange) {
  Rng r(1);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(r.next_below(17), 17u);
  }
}

TEST(Rng, NextInInclusiveBounds) {
  Rng r(2);
  bool hit_lo = false, hit_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = r.next_in(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    hit_lo |= v == -3;
    hit_hi |= v == 3;
  }
  EXPECT_TRUE(hit_lo);
  EXPECT_TRUE(hit_hi);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng r(3);
  for (int i = 0; i < 10000; ++i) {
    const double v = r.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, ExponentialMeanApproximatesInverseRate) {
  Rng r(4);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += r.next_exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, PoissonMeanMatches) {
  Rng r(5);
  for (double mean : {0.5, 4.0, 30.0, 200.0}) {
    double sum = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
      sum += static_cast<double>(r.next_poisson(mean));
    EXPECT_NEAR(sum / n, mean, std::max(0.1, mean * 0.05));
  }
  EXPECT_EQ(r.next_poisson(0.0), 0u);
}

TEST(Rng, NormalMoments) {
  Rng r(6);
  double sum = 0, sq = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double v = r.next_normal();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, BoundedParetoStaysInBounds) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = r.next_bounded_pareto(1.2, 1.0, 1000.0);
    EXPECT_GE(v, 1.0);
    EXPECT_LE(v, 1000.0);
  }
}

TEST(Rng, StreamIsDeterministicPerId) {
  // Same (seed, stream) -> identical sequence: workers can rebuild their
  // generator from the pair alone, with no shared mutable state.
  Rng a = Rng::stream(42, 3);
  Rng b = Rng::stream(42, 3);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, StreamsAreIndependent) {
  Rng s0 = Rng::stream(42, 0);
  Rng s1 = Rng::stream(42, 1);
  Rng other_seed = Rng::stream(43, 0);
  int collisions = 0;
  for (int i = 0; i < 100; ++i) {
    const auto a = s0.next_u64();
    const auto b = s1.next_u64();
    const auto c = other_seed.next_u64();
    collisions += (a == b) + (a == c);
  }
  EXPECT_EQ(collisions, 0);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(99);
  Rng b = a.split();
  // The split stream must not replay the parent stream.
  Rng a2(99);
  (void)a2.next_u64();  // advance past the split draw
  EXPECT_NE(b.next_u64(), a2.next_u64());
}

}  // namespace
}  // namespace softcell
