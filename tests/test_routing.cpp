#include "topo/routing.hpp"

#include <gtest/gtest.h>

#include "topo/cellular.hpp"

namespace softcell {
namespace {

TEST(RoutingOracle, PathEndpointsAndAdjacency) {
  const CellularTopology topo({.k = 4});
  const RoutingOracle routes(topo.graph());
  const NodeId src = topo.access_switch(0);
  const NodeId dst = topo.gateway();
  const auto p = routes.path(src, dst);
  ASSERT_GE(p.size(), 2u);
  EXPECT_EQ(p.front(), src);
  EXPECT_EQ(p.back(), dst);
  for (std::size_t i = 0; i + 1 < p.size(); ++i) {
    const auto& nbrs = topo.graph().neighbors(p[i]);
    EXPECT_NE(std::find(nbrs.begin(), nbrs.end(), p[i + 1]), nbrs.end());
  }
}

TEST(RoutingOracle, PathLengthMatchesDistance) {
  const CellularTopology topo({.k = 4});
  const RoutingOracle routes(topo.graph());
  for (std::uint32_t b = 0; b < topo.num_base_stations(); b += 7) {
    const auto p = routes.path(topo.access_switch(b), topo.gateway());
    EXPECT_EQ(p.size(),
              routes.distance(topo.access_switch(b), topo.gateway()) + 1);
  }
}

TEST(RoutingOracle, TrivialSelfPath) {
  const CellularTopology topo({.k = 2});
  const RoutingOracle routes(topo.graph());
  const auto p = routes.path(topo.gateway(), topo.gateway());
  ASSERT_EQ(p.size(), 1u);
  EXPECT_EQ(p[0], topo.gateway());
}

TEST(RoutingOracle, MiddleboxesAreNotTransit) {
  // Paths between switches must never go *through* a middlebox vertex.
  const CellularTopology topo({.k = 4, .seed = 3});
  const RoutingOracle routes(topo.graph());
  for (std::uint32_t b = 0; b < topo.num_base_stations(); b += 11) {
    const auto p = routes.path(topo.access_switch(b), topo.gateway());
    for (std::size_t i = 1; i + 1 < p.size(); ++i)
      EXPECT_NE(topo.graph().kind(p[i]), NodeKind::kMiddlebox);
  }
}

TEST(RoutingOracle, PathToMiddleboxHost) {
  const CellularTopology topo({.k = 4, .seed = 3});
  const RoutingOracle routes(topo.graph());
  const auto& mb = topo.pod_instance(0, 1);
  const auto p = routes.path(topo.access_switch(0), mb.host_switch);
  EXPECT_EQ(p.back(), mb.host_switch);
}

TEST(RoutingOracle, TreesAreMemoized) {
  const CellularTopology topo({.k = 4});
  const RoutingOracle routes(topo.graph());
  (void)routes.path(topo.access_switch(0), topo.gateway());
  (void)routes.path(topo.access_switch(1), topo.gateway());
  EXPECT_EQ(routes.cached_trees(), 1u);  // both share the gateway tree
}

TEST(RoutingOracle, DistancesSymmetricInUnweightedGraph) {
  const CellularTopology topo({.k = 4, .seed = 7});
  const RoutingOracle routes(topo.graph());
  const NodeId a = topo.access_switch(3);
  const NodeId b = topo.core_switches()[5];
  EXPECT_EQ(routes.distance(a, b), routes.distance(b, a));
}

TEST(RoutingOracle, RingPathsTakeShortSide) {
  // In a 10-station ring closing through the aggregation switch, station 0
  // is 1 hop from the agg switch and station 9 is also 1 hop (other side).
  const CellularTopology topo({.k = 2});
  const RoutingOracle routes(topo.graph());
  const auto& g = topo.graph();
  // Find the agg switch adjacent to access switch 0.
  NodeId agg{};
  for (NodeId n : g.neighbors(topo.access_switch(0)))
    if (g.kind(n) == NodeKind::kAggSwitch) agg = n;
  ASSERT_TRUE(agg.valid());
  EXPECT_EQ(routes.distance(topo.access_switch(0), agg), 1u);
  EXPECT_EQ(routes.distance(topo.access_switch(9), agg), 1u);
  EXPECT_EQ(routes.distance(topo.access_switch(4), agg), 5u);
}

}  // namespace
}  // namespace softcell
