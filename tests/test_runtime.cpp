// Concurrency tests for the control-plane runtime (src/runtime/).
//
// Labelled `concurrency` in CMake so the suite can be re-run under
// -DSOFTCELL_SANITIZE=thread (`ctest -L concurrency`): the queue, pool,
// snapshot and pipeline tests all exercise real cross-thread traffic.
#include "runtime/runtime.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "runtime/queue.hpp"
#include "runtime/sharded_controller.hpp"
#include "runtime/snapshot.hpp"
#include "runtime/thread_pool.hpp"
#include "sim/network.hpp"
#include "util/rng.hpp"

namespace softcell {
namespace {

// --- queues ------------------------------------------------------------------

TEST(BoundedMpmcQueue, FifoOrderAndBounds) {
  BoundedMpmcQueue<int> q(4);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(q.try_push(i));
  EXPECT_FALSE(q.try_push(99));  // full: backpressure, not growth
  int v = -1;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(q.try_pop(v));
    EXPECT_EQ(v, i);
  }
  EXPECT_FALSE(q.try_pop(v));
}

TEST(BoundedMpmcQueue, BlockingPushWaitsForSpace) {
  BoundedMpmcQueue<int> q(2);
  std::vector<int> got;
  std::thread consumer([&] {
    int v;
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(q.pop(v));
      got.push_back(v);
    }
  });
  // Three of these pushes must block until the consumer frees a slot.
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(q.push(i));
  consumer.join();
  EXPECT_EQ(got, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(BoundedMpmcQueue, CloseDrainsThenFails) {
  BoundedMpmcQueue<int> q(8);
  EXPECT_TRUE(q.push(1));
  EXPECT_TRUE(q.push(2));
  q.close();
  EXPECT_FALSE(q.push(3));
  int v = 0;
  EXPECT_TRUE(q.pop(v));
  EXPECT_EQ(v, 1);
  EXPECT_TRUE(q.pop(v));
  EXPECT_EQ(v, 2);
  EXPECT_FALSE(q.pop(v));  // closed and drained
}

TEST(SpscRing, CrossThreadFifo) {
  constexpr int kItems = 100'000;
  SpscRing<int> ring(64);
  std::thread producer([&] {
    for (int i = 0; i < kItems; ++i)
      while (!ring.try_push(i)) std::this_thread::yield();
  });
  int expect = 0, v = -1;
  while (expect < kItems) {
    if (ring.try_pop(v)) {
      ASSERT_EQ(v, expect);  // strict FIFO across threads
      ++expect;
    }
  }
  producer.join();
  EXPECT_TRUE(ring.empty());
}

// --- thread pool -------------------------------------------------------------

// Lock-discipline regression (softcell-verify Part A finding, PR 4):
// ThreadPool::stop() used to re-read `started_` *outside* lifecycle_mu_,
// racing a concurrent start().  A stale false sent stop() down the inline
// drain while start()'s freshly launched workers drained the same queues,
// so a task could run twice -- and the launched workers were never joined
// (std::terminate from ~thread).  started_ is now read in the same
// critical section that flips stopped_, and start() refuses to launch
// after stop().  Every accepted task must run exactly once, whichever
// side wins the race.
TEST(ThreadSafety, StopRacingStartRunsEveryTaskExactlyOnce) {
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> runs{0};
    ThreadPool<int> pool({.workers = 2, .start_suspended = true},
                         [&](unsigned, int&) { runs.fetch_add(1); });
    for (int i = 0; i < 64; ++i) ASSERT_TRUE(pool.submit_to(i % 2, i));
    std::thread starter([&] { pool.start(); });
    std::thread stopper([&] { pool.stop(); });
    starter.join();
    stopper.join();
    EXPECT_EQ(runs.load(), 64) << "round " << round;
  }
}

TEST(ThreadPool, PinnedProducerFifoWithBackpressure) {
  // A tiny ring forces the producer through the spin-on-full path; order
  // must still hold (the determinism guarantee the runtime builds on).
  std::vector<int> seen;
  ThreadPool<int> pool({.workers = 1, .ring_capacity = 8},
                       [&](unsigned, int& v) { seen.push_back(v); });
  for (int i = 0; i < 1000; ++i) EXPECT_TRUE(pool.submit_to(0, i));
  pool.drain();
  ASSERT_EQ(seen.size(), 1000u);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(seen[i], i);
}

TEST(ThreadPool, SharedQueueRunsEverything) {
  std::atomic<int> count{0};
  {
    ThreadPool<int> pool({.workers = 2},
                         [&](unsigned, int&) { count.fetch_add(1); });
    for (int i = 0; i < 500; ++i) EXPECT_TRUE(pool.submit(i));
    pool.drain();
    EXPECT_EQ(count.load(), 500);
    EXPECT_EQ(pool.processed(), 500u);
  }
}

TEST(ThreadPool, SuspendedPoolRunsAcceptedTasksOnStop) {
  std::vector<int> seen;
  {
    ThreadPool<int> pool({.workers = 1, .start_suspended = true},
                         [&](unsigned, int& v) { seen.push_back(v); });
    for (int i = 0; i < 10; ++i) EXPECT_TRUE(pool.submit_to(0, i));
    EXPECT_TRUE(seen.empty());  // nothing runs before start()/stop()
  }
  EXPECT_EQ(seen, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}));
}

TEST(ThreadPool, OverflowQueuePreservesEveryTaskBehindTheRing) {
  // A suspended single-worker pool with an exactly-sized ring: the main
  // thread claims the SPSC ring (first submit_to wins the owner CAS) and
  // fills all 7 usable slots; a second thread then takes the
  // foreign-producer path and its 8 submissions land in the bounded MPMC
  // overflow queue (capacity 8 -- a 9th would block).  On start the worker
  // drains the ring fully first (that is the per-shard FIFO guarantee),
  // then the overflow, losing nothing.
  std::vector<int> seen;
  ThreadPool<int> pool({.workers = 1,
                        .ring_capacity = 7,  // usable capacity exactly 7
                        .overflow_capacity = 8,
                        .start_suspended = true},
                       [&](unsigned, int& v) { seen.push_back(v); });
  for (int i = 0; i < 7; ++i) EXPECT_TRUE(pool.submit_to(0, i));
  std::thread other([&] {
    for (int i = 100; i < 108; ++i) EXPECT_TRUE(pool.submit_to(0, i));
  });
  other.join();  // all 8 overflow pushes completed with no consumer running
  pool.start();
  pool.drain();
  ASSERT_EQ(seen.size(), 15u);
  for (int i = 0; i < 7; ++i) EXPECT_EQ(seen[i], i);  // ring first, FIFO
  for (int i = 0; i < 8; ++i) EXPECT_EQ(seen[7 + i], 100 + i);  // then overflow
  EXPECT_EQ(pool.processed(), 15u);
}

// --- versioned snapshot ------------------------------------------------------

TEST(VersionedSnapshot, ReadersNeverSeeTornState) {
  struct Pair {
    int a = 0;
    int b = 0;
  };
  VersionedSnapshot<Pair> snap(std::make_shared<const Pair>());
  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r)
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        const auto p = snap.load();
        ASSERT_EQ(p->a, p->b);  // the invariant every published object has
      }
    });
  for (int i = 1; i <= 1000; ++i)
    snap.update(std::make_shared<const Pair>(Pair{i, i}));
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();
  EXPECT_EQ(snap.version(), 1001u);  // initial 1 + 1000 updates
  EXPECT_EQ(snap.load()->a, 1000);
}

// --- metrics -----------------------------------------------------------------

TEST(Metrics, HistogramQuantilesAndAggregation) {
  ShardMetrics a, b;
  for (int i = 0; i < 90; ++i) a.record_latency(1000);      // bucket [512,1024)
  for (int i = 0; i < 10; ++i) b.record_latency(1'000'000);
  a.count_request();
  b.count_request();
  b.count_coalesced();

  MetricsSnapshot snap;
  a.merge_into(snap);
  b.merge_into(snap);
  EXPECT_EQ(snap.requests, 2u);
  EXPECT_EQ(snap.coalesced_misses, 1u);
  EXPECT_EQ(snap.latency_count(), 100u);
  // Quantiles report the log-linear bucket's upper bound; 1000 and 1e6
  // both sit in the last sub-bucket of their octave, so the bounds land
  // on the octave boundary.
  EXPECT_EQ(snap.latency_quantile_ns(0.50), 1024u);
  EXPECT_EQ(snap.latency_quantile_ns(0.99), 1u << 20);
  EXPECT_LE(snap.latency_quantile_ns(0.50), snap.latency_quantile_ns(0.99));
}

// --- sharded controller + runtime pipeline ----------------------------------

ServicePolicy provider_policy(const CellularTopology& topo,
                              std::uint32_t clauses,
                              std::vector<ClauseId>* ids = nullptr) {
  ServicePolicy policy;
  for (std::uint32_t c = 0; c < clauses; ++c) {
    std::vector<MbType> seq{0u, 1u + (c % (topo.num_middlebox_types() - 1))};
    const auto id =
        policy.add_clause(10 + c, Predicate::provider_is(100 + c),
                          ServiceAction{true, seq, QosClass::kBestEffort});
    if (ids) ids->push_back(id);
  }
  return policy;
}

void populate(ShardedController& ctrl, std::uint32_t ues,
              std::uint32_t clauses, std::uint32_t num_bs) {
  for (std::uint32_t i = 0; i < ues; ++i) {
    const UeId ue(i + 1);
    SubscriberProfile p;
    p.ue = ue;
    p.provider = 100 + (i % clauses);
    ctrl.provision_subscriber(ue, p);
    ctrl.attach_ue(ue, i % num_bs, LocalUeId(static_cast<std::uint16_t>(i)));
  }
}

TEST(ShardedController, RoutesByUeAndPartitionsState) {
  CellularTopology topo({.k = 4, .seed = 1});
  ShardedControllerOptions opts;
  opts.shards = 4;
  ShardedController ctrl(topo, provider_policy(topo, 4), opts);
  populate(ctrl, 64, 4, topo.num_base_stations());

  std::set<std::size_t> populated;
  for (std::uint32_t i = 0; i < 64; ++i) {
    const UeId ue(i + 1);
    const auto shard = ctrl.shard_of(ue);
    ASSERT_LT(shard, ctrl.shard_count());
    // The owning shard has the UE's state; the other shards do not.
    ASSERT_TRUE(ctrl.ue_location(ue).has_value());
    EXPECT_TRUE(ctrl.shard(shard).ue_location(ue).has_value());
    for (std::size_t s = 0; s < ctrl.shard_count(); ++s) {
      if (s != shard) {
        EXPECT_FALSE(ctrl.shard(s).ue_location(ue).has_value());
      }
    }
    populated.insert(shard);
  }
  EXPECT_EQ(populated.size(), ctrl.shard_count());  // splitmix spreads 64 UEs
}

TEST(ShardedController, PolicySnapshotSwapIsVersioned) {
  CellularTopology topo({.k = 4, .seed = 1});
  ShardedControllerOptions opts;
  opts.shards = 2;
  ShardedController ctrl(topo, provider_policy(topo, 2), opts);
  const auto before = ctrl.policy_snapshot();
  const auto v0 = ctrl.policy_version();
  const auto v1 = ctrl.update_policy(provider_policy(topo, 3));
  EXPECT_GT(v1, v0);
  const auto after = ctrl.policy_snapshot();
  EXPECT_NE(before.get(), after.get());  // old snapshot still alive, distinct
  EXPECT_EQ(before->clauses().size() + 1, after->clauses().size());
}

TEST(Runtime, ShardAffinityEachShardOneWorker) {
  CellularTopology topo({.k = 4, .seed = 1});
  ShardedControllerOptions opts;
  opts.shards = 4;
  ShardedController ctrl(topo, provider_policy(topo, 4), opts);
  populate(ctrl, 64, 4, topo.num_base_stations());
  ControlPlaneRuntime runtime(ctrl, {.workers = 2});

  std::mutex mu;
  std::map<std::size_t, std::set<std::thread::id>> executed_on;
  for (int round = 0; round < 50; ++round) {
    for (std::uint32_t i = 0; i < 64; ++i) {
      const UeId ue(i + 1);
      Request r;
      r.kind = RequestKind::kFetchClassifiers;
      r.ue = ue;
      r.bs = i % topo.num_base_stations();
      const auto shard = ctrl.shard_of(ue);
      r.done = [&, shard](Response&&) {
        std::lock_guard lock(mu);
        executed_on[shard].insert(std::this_thread::get_id());
      };
      ASSERT_TRUE(runtime.post(std::move(r)));
    }
  }
  runtime.drain();
  ASSERT_EQ(executed_on.size(), 4u);
  std::map<unsigned, std::thread::id> worker_thread;
  for (const auto& [shard, threads] : executed_on) {
    // Every request of a shard ran on exactly one worker thread...
    ASSERT_EQ(threads.size(), 1u) << "shard " << shard;
    // ...and shards mapping to the same worker share that thread.
    const auto w = runtime.worker_of(shard);
    const auto [it, inserted] = worker_thread.emplace(w, *threads.begin());
    if (!inserted) {
      EXPECT_EQ(it->second, *threads.begin());
    }
  }
  EXPECT_EQ(worker_thread.size(), 2u);
}

TEST(Runtime, DuplicateMissesCoalesceToOneInstall) {
  CellularTopology topo({.k = 4, .seed = 1});
  std::vector<ClauseId> clauses;
  ShardedControllerOptions opts;
  opts.shards = 2;
  ShardedController ctrl(topo, provider_policy(topo, 2, &clauses), opts);

  // Suspended pool: the whole burst is posted before anything executes, so
  // the coalescing decision is deterministic.
  ControlPlaneRuntime runtime(ctrl, {.workers = 1, .start_suspended = true});
  std::mutex mu;
  std::vector<PolicyTag> tags;
  constexpr int kBurst = 8;
  for (int i = 0; i < kBurst; ++i) {
    Request r;
    r.kind = RequestKind::kPolicyPath;
    r.ue = UeId(7);  // same UE -> same shard; same (bs, clause) key
    r.bs = 3;
    r.clause = clauses[0];
    r.done = [&](Response&& resp) {
      ASSERT_TRUE(resp.ok) << resp.error;
      std::lock_guard lock(mu);
      tags.push_back(resp.tag);
    };
    ASSERT_TRUE(runtime.post(std::move(r)));
  }
  runtime.start();
  runtime.drain();

  ASSERT_EQ(tags.size(), static_cast<std::size_t>(kBurst));
  for (const auto t : tags) EXPECT_EQ(t, tags.front());  // one shared tag
  const auto m = runtime.metrics();
  EXPECT_EQ(m.path_requests, 1u);  // one install executed...
  EXPECT_EQ(m.coalesced_misses, static_cast<std::uint64_t>(kBurst - 1));
  EXPECT_EQ(m.latency_count(), static_cast<std::uint64_t>(kBurst));
}

TEST(Runtime, OverflowSubmissionsLoseNothingAndStillCoalesce) {
  // Saturate worker 0's SPSC ring from the pinned producer, then submit the
  // rest from a second thread so every one of those takes the bounded MPMC
  // overflow path (RuntimeOptions::overflow_capacity makes it exactly fit).
  // Every completion must still fire and duplicate path misses posted from
  // the foreign thread must coalesce without touching a queue at all.
  CellularTopology topo({.k = 4, .seed = 1});
  std::vector<ClauseId> clauses;
  ShardedControllerOptions opts;
  opts.shards = 1;  // one shard: every request targets worker 0's queues
  ShardedController ctrl(topo, provider_policy(topo, 2, &clauses), opts);
  populate(ctrl, 8, 2, topo.num_base_stations());

  ControlPlaneRuntime runtime(ctrl, {.workers = 1,
                                     .queue_capacity = 7,  // usable ring = 7
                                     .overflow_capacity = 8,
                                     .start_suspended = true});
  std::mutex mu;
  std::vector<PolicyTag> tags;
  std::atomic<int> classifier_done{0};
  const auto post_classifiers = [&](std::uint32_t i) {
    Request r;
    r.kind = RequestKind::kFetchClassifiers;
    r.ue = UeId(1 + i % 8);
    r.bs = i % topo.num_base_stations();
    r.done = [&](Response&& resp) {
      ASSERT_TRUE(resp.ok) << resp.error;
      classifier_done.fetch_add(1);
    };
    ASSERT_TRUE(runtime.post(std::move(r)));
  };
  const auto post_path = [&] {
    Request r;
    r.kind = RequestKind::kPolicyPath;
    r.ue = UeId(7);
    r.bs = 3;
    r.clause = clauses[0];
    r.done = [&](Response&& resp) {
      ASSERT_TRUE(resp.ok) << resp.error;
      std::lock_guard lock(mu);
      tags.push_back(resp.tag);
    };
    ASSERT_TRUE(runtime.post(std::move(r)));
  };

  // Pinned producer: one path miss + six classifier fetches fill the ring.
  post_path();
  for (std::uint32_t i = 0; i < 6; ++i) post_classifiers(i);
  // Foreign thread: four duplicate misses coalesce onto the in-flight
  // install (no enqueue), five classifier fetches land in the overflow.
  std::thread other([&] {
    for (int d = 0; d < 4; ++d) post_path();
    for (std::uint32_t i = 6; i < 11; ++i) post_classifiers(i);
  });
  other.join();  // everything admitted while the pool is still suspended

  runtime.start();
  runtime.drain();

  EXPECT_EQ(classifier_done.load(), 11);
  ASSERT_EQ(tags.size(), 5u);  // primary + 4 coalesced, none lost
  for (const auto t : tags) EXPECT_EQ(t, tags.front());
  const auto m = runtime.metrics();
  EXPECT_EQ(m.path_requests, 1u);
  EXPECT_EQ(m.coalesced_misses, 4u);
  EXPECT_EQ(m.latency_count(), 16u);  // 11 fetches + 5 path completions
}

TEST(Runtime, ErrorsPropagateAndAreCounted) {
  CellularTopology topo({.k = 4, .seed = 1});
  ShardedControllerOptions opts;
  opts.shards = 2;
  ShardedController ctrl(topo, provider_policy(topo, 2), opts);
  ControlPlaneRuntime runtime(ctrl, {.workers = 1});
  // Unknown clause: the worker catches the controller's exception and the
  // synchronous wrapper rethrows it on the caller's thread.
  EXPECT_THROW(runtime.request_policy_path(UeId(1), 0, ClauseId(9999)),
               std::runtime_error);
  EXPECT_GE(runtime.metrics().errors, 1u);
}

// The headline determinism property: N workers produce byte-identical final
// controller state to the single-threaded reference, because a shard's
// requests execute in posting order on its one worker.
TEST(Runtime, StressFourWorkersMatchSerialReference) {
  constexpr std::uint32_t kUes = 256;
  constexpr std::uint32_t kClauses = 8;
  constexpr std::uint64_t kRequests = 12'000;  // >= 4 threads x 10k+ total ops
  CellularTopology topo({.k = 4, .seed = 1});
  const auto num_bs = topo.num_base_stations();

  struct Op {
    bool path;
    UeId ue;
    std::uint32_t bs;
    ClauseId clause;
  };
  std::vector<ClauseId> clauses;
  provider_policy(topo, kClauses, &clauses);
  std::vector<Op> ops;
  ops.reserve(kRequests);
  Rng rng = Rng::stream(0xD15EA5E, 0);
  for (std::uint64_t i = 0; i < kRequests; ++i) {
    const auto idx = static_cast<std::uint32_t>(rng.next_below(kUes));
    ops.push_back(Op{rng.next_double() < 0.05, UeId(idx + 1), idx % num_bs,
                     clauses[idx % kClauses]});
  }

  const auto run = [&](unsigned workers) {
    ShardedControllerOptions opts;
    opts.shards = 4;
    ShardedController ctrl(topo, provider_policy(topo, kClauses), opts);
    populate(ctrl, kUes, kClauses, num_bs);
    if (workers == 0) {
      // Inline serial reference: no runtime, no threads.
      for (const auto& op : ops) {
        if (op.path)
          (void)ctrl.request_policy_path(op.ue, op.bs, op.clause);
        else
          (void)ctrl.fetch_classifiers(op.ue, op.bs);
      }
      return ctrl.state_fingerprint();
    }
    ControlPlaneRuntime runtime(ctrl, {.workers = workers});
    for (const auto& op : ops) {
      Request r;
      r.kind = op.path ? RequestKind::kPolicyPath
                       : RequestKind::kFetchClassifiers;
      r.ue = op.ue;
      r.bs = op.bs;
      r.clause = op.clause;
      EXPECT_TRUE(runtime.post(std::move(r)));
    }
    runtime.drain();
    EXPECT_EQ(runtime.metrics().errors, 0u);
    return ctrl.state_fingerprint();
  };

  const auto reference = run(0);
  EXPECT_EQ(run(1), reference);
  EXPECT_EQ(run(4), reference);
}

// --- end-to-end: the simulator through the pipeline --------------------------

TEST(Runtime, NetworkThroughPipelineMatchesInline) {
  const auto scenario = [](SoftCellNetwork& net) {
    std::vector<std::uint64_t> tags;
    for (std::uint32_t i = 0; i < 8; ++i) {
      SubscriberProfile p;
      p.plan = i % 2 ? BillingPlan::kGold : BillingPlan::kSilver;
      const UeId ue = net.add_subscriber(p);
      net.attach(ue, i % net.topology().num_base_stations());
      const auto flow = net.open_flow(ue, 0x08080808u, 80);
      const auto d = net.send_uplink(flow, TcpFlag::kSyn);
      EXPECT_TRUE(d.delivered) << d.drop_reason;
      tags.push_back(net.codec().tag_of(d.final_packet.key.src_port).value());
    }
    return tags;
  };

  SoftCellConfig inline_cfg{.topo = {.k = 4, .seed = 17}};
  SoftCellNetwork inline_net(inline_cfg, make_table1_policy());
  const auto inline_tags = scenario(inline_net);

  SoftCellConfig rt_cfg{.topo = {.k = 4, .seed = 17}};
  rt_cfg.runtime_workers = 2;
  SoftCellNetwork rt_net(rt_cfg, make_table1_policy());
  const auto rt_tags = scenario(rt_net);

  // Same policy tags on the wire, same final controller state.
  EXPECT_EQ(inline_tags, rt_tags);
  EXPECT_EQ(inline_net.controller().state_fingerprint(),
            rt_net.controller().state_fingerprint());
  // The pipeline really carried the control-plane traffic.
  ASSERT_NE(rt_net.runtime(), nullptr);
  EXPECT_EQ(inline_net.runtime(), nullptr);
  EXPECT_GT(rt_net.runtime()->metrics().path_requests, 0u);
}

}  // namespace
}  // namespace softcell
