// Churned-state fingerprint regression (ROADMAP item 2 headroom): the
// million-UE bench no longer only grows the population -- it detaches,
// re-attaches, and storms handoffs over resident state.  This test pins
// the invariant the bench's cross-layout exit code relies on, at test
// scale: the control fingerprint after a churned day is identical across
// storage layouts (slab vs node maps), across brain modes (shard brain vs
// legacy clones), and across repeat runs.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "mem/slab.hpp"
#include "runtime/shard_brain.hpp"
#include "sim/network.hpp"

namespace softcell {
namespace {

// A miniature of bench_million_ue's churned diurnal day: attach a
// population, open flows for a slice, detach + re-attach a slice at a
// different base station, and run a handoff storm over another slice.
std::uint64_t churned_fingerprint() {
  SoftCellNetwork net(SoftCellConfig{.topo = {.k = 4, .seed = 91}},
                      make_table1_policy());
  const std::uint32_t num_bs = net.topology().num_base_stations();
  constexpr std::uint32_t kUes = 240;

  std::vector<UeId> ues;
  ues.reserve(kUes);
  for (std::uint32_t i = 0; i < kUes; ++i) {
    SubscriberProfile p;
    p.plan = static_cast<BillingPlan>(i % 3);
    p.device = static_cast<DeviceClass>(i % 5);
    const UeId ue = net.add_subscriber(p);
    net.attach(ue, i % num_bs);
    ues.push_back(ue);
    if (i % 8 == 0) {
      const auto flow = net.open_flow(ue, 0x08000001u + i, 80);
      EXPECT_TRUE(net.send_uplink(flow, TcpFlag::kSyn).delivered);
    }
  }
  // Detach / re-idle churn: a quarter of the population leaves and comes
  // back somewhere else.
  for (std::uint32_t i = 1; i < kUes; i += 4) {
    net.detach(ues[i]);
    net.attach(ues[i], (i + 7) % num_bs);
  }
  // Handoff storm over an eighth of the resident population.
  for (std::uint32_t i = 3; i < kUes; i += 8) {
    const auto ticket = net.handoff(ues[i], ((i % num_bs) + 1) % num_bs);
    net.complete_handoff(ticket);
  }
  return net.control_fingerprint();
}

TEST(ScaleChurn, FingerprintIdenticalAcrossLayoutsModesAndRuns) {
  std::uint64_t reference = 0;
  {
    mem::ScopedSlabLayout layout(true);
    ScopedBrainMode mode(true);
    reference = churned_fingerprint();
  }
  {
    mem::ScopedSlabLayout layout(false);  // node maps, same history
    ScopedBrainMode mode(true);
    EXPECT_EQ(churned_fingerprint(), reference) << "node layout diverged";
  }
  {
    mem::ScopedSlabLayout layout(true);  // legacy brain, same history
    ScopedBrainMode mode(false);
    EXPECT_EQ(churned_fingerprint(), reference) << "legacy brain diverged";
  }
  {
    mem::ScopedSlabLayout layout(true);  // repeat run: determinism
    ScopedBrainMode mode(true);
    EXPECT_EQ(churned_fingerprint(), reference) << "repeat run diverged";
  }
}

}  // namespace
}  // namespace softcell
