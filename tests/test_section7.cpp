// The section-7 discussion features: mobile-to-mobile direct paths,
// Internet-initiated traffic via public IPs, and offline recompaction.
#include <gtest/gtest.h>

#include "sim/network.hpp"

namespace softcell {
namespace {

class Section7Test : public ::testing::Test {
 protected:
  Section7Test() : net_(SoftCellConfig{.topo = {.k = 4, .seed = 41}},
                        make_table1_policy()) {}

  UeId silver_ue(std::uint32_t bs) {
    SubscriberProfile p;
    p.plan = BillingPlan::kSilver;
    const UeId ue = net_.add_subscriber(p);
    net_.attach(ue, bs);
    return ue;
  }

  SoftCellNetwork net_;
};

// --- mobile-to-mobile --------------------------------------------------------

TEST_F(Section7Test, M2mFlowNeverTouchesTheGateway) {
  const UeId a = silver_ue(3);
  const UeId b = silver_ue(97);  // different pod
  const auto flow = net_.open_m2m_flow(a, b, 80);
  const auto d = net_.send_m2m(flow, /*a_to_b=*/true, TcpFlag::kSyn);
  ASSERT_TRUE(d.delivered) << d.drop_reason;
  for (const NodeId n : d.hops) {
    EXPECT_NE(n, net_.topology().gateway());
    EXPECT_NE(n, net_.topology().internet());
  }
}

TEST_F(Section7Test, M2mDeliversWithPermanentAddresses) {
  const UeId a = silver_ue(0);
  const UeId b = silver_ue(50);
  const auto flow = net_.open_m2m_flow(a, b, 80);
  const auto d = net_.send_m2m(flow, true, TcpFlag::kSyn);
  ASSERT_TRUE(d.delivered) << d.drop_reason;
  // B sees A's permanent source and its own permanent destination.
  EXPECT_EQ(d.final_packet.key.src_ip, flow.key.src_ip);
  EXPECT_EQ(d.final_packet.key.dst_ip, flow.key.dst_ip);
  EXPECT_EQ(d.final_packet.key.dst_port, 80);
}

TEST_F(Section7Test, M2mPolicyAppliesInBothDirections) {
  const UeId a = silver_ue(5);
  const UeId b = silver_ue(120);
  const auto flow = net_.open_m2m_flow(a, b, 80);  // web: firewall clause
  const auto fwd = net_.send_m2m(flow, true, TcpFlag::kSyn);
  ASSERT_TRUE(fwd.delivered) << fwd.drop_reason;
  ASSERT_EQ(fwd.middlebox_sequence.size(), 1u);
  EXPECT_EQ(net_.middlebox(fwd.middlebox_sequence[0]).kind(), "firewall");
  // The reply crosses the *same* stateful instance (and is accepted).
  const auto rev = net_.send_m2m(flow, false);
  ASSERT_TRUE(rev.delivered) << rev.drop_reason;
  EXPECT_EQ(rev.middlebox_sequence, fwd.middlebox_sequence);
  EXPECT_EQ(rev.final_packet.key.dst_ip, flow.key.src_ip);
}

TEST_F(Section7Test, M2mReverseWithoutSynIsFirewalled) {
  const UeId a = silver_ue(5);
  const UeId b = silver_ue(120);
  const auto flow = net_.open_m2m_flow(a, b, 80);
  // B speaks first: the connection was never opened UE-A-side, so the
  // stateful firewall drops it.
  const auto rev = net_.send_m2m(flow, false);
  EXPECT_FALSE(rev.delivered);
  EXPECT_EQ(rev.drop_reason, "dropped by middlebox");
}

TEST_F(Section7Test, M2mShorterThanGatewayDetour) {
  // The whole point of section 7's M2M handling: no P-GW-style detour.
  const UeId a = silver_ue(2);
  const UeId b = silver_ue(38);  // same pod
  const auto m2m = net_.open_m2m_flow(a, b, 80);
  const auto direct = net_.send_m2m(m2m, true, TcpFlag::kSyn);
  ASSERT_TRUE(direct.delivered) << direct.drop_reason;
  // Reference: Internet round trip (UE a -> server) costs at least as many
  // hops one-way as the whole direct path.
  const auto inet = net_.open_flow(a, 0x08080808u, 80);
  const auto up = net_.send_uplink(inet, TcpFlag::kSyn);
  ASSERT_TRUE(up.delivered);
  EXPECT_LT(direct.hops.size(), 2 * up.hops.size());
}

TEST_F(Section7Test, M2mRequiresDistinctBaseStations) {
  const UeId a = silver_ue(7);
  const UeId b = silver_ue(7);
  EXPECT_THROW(net_.open_m2m_flow(a, b, 80), std::invalid_argument);
}

TEST_F(Section7Test, M2mDeniedByPolicy) {
  SubscriberProfile outsider;
  outsider.provider = 9;
  const UeId a = net_.add_subscriber(outsider);
  net_.attach(a, 1);
  const UeId b = silver_ue(90);
  EXPECT_THROW(net_.open_m2m_flow(a, b, 80), std::invalid_argument);
}

TEST_F(Section7Test, M2mPathsAreCachedPerClausePair) {
  const UeId a = silver_ue(3);
  const UeId b = silver_ue(97);
  const UeId c = silver_ue(3);  // same bs as a
  (void)net_.open_m2m_flow(a, b, 80);
  const auto installs = net_.controller().path_installs();
  (void)net_.open_m2m_flow(c, b, 80);  // same (clause, src-bs, dst-bs) pair
  EXPECT_EQ(net_.controller().path_installs(), installs);
}

// --- Internet-initiated traffic ----------------------------------------------

TEST_F(Section7Test, InboundTrafficReachesExposedService) {
  const UeId ue = silver_ue(12);
  const auto svc = net_.expose_service(ue, 80);
  EXPECT_NE(svc.public_ip, 0u);
  const auto d = net_.send_inbound(svc, 0x08080808u, 51000);
  ASSERT_TRUE(d.delivered) << d.drop_reason;
  // Delivered to the UE's permanent address and service port.
  EXPECT_EQ(d.final_packet.key.dst_port, 80);
  EXPECT_FALSE(net_.plan().carrier().contains(d.final_packet.key.dst_ip));
}

TEST_F(Section7Test, InboundTraversesThePolicyPath) {
  const UeId ue = silver_ue(12);
  const auto svc = net_.expose_service(ue, 80);
  const auto d = net_.send_inbound(svc, 0x08080808u, 51000);
  ASSERT_TRUE(d.delivered) << d.drop_reason;
  ASSERT_FALSE(d.middlebox_sequence.empty());
  EXPECT_EQ(net_.middlebox(d.middlebox_sequence.back()).kind(), "firewall");
}

TEST_F(Section7Test, ServiceRepliesUseTheStablePublicEndpoint) {
  const UeId ue = silver_ue(30);
  const auto svc = net_.expose_service(ue, 80);
  ASSERT_TRUE(net_.send_inbound(svc, 0x08080808u, 51000).delivered);
  const auto reply = net_.send_service_reply(svc, 0x08080808u, 51000);
  ASSERT_TRUE(reply.delivered) << reply.drop_reason;
  EXPECT_EQ(reply.final_packet.key.src_ip, svc.public_ip);
  EXPECT_EQ(reply.final_packet.key.src_port, svc.port);
}

TEST_F(Section7Test, ReplyBeforeInboundHasNoRule) {
  const UeId ue = silver_ue(30);
  const auto svc = net_.expose_service(ue, 80);
  EXPECT_FALSE(net_.send_service_reply(svc, 0x08080808u, 51000).delivered);
}

TEST_F(Section7Test, UnknownPublicDestinationDropsAtGateway) {
  const UeId ue = silver_ue(30);
  const auto svc = net_.expose_service(ue, 80);
  PublicEndpoint unused;
  (void)unused;
  SoftCellNetwork::PublicService bogus{svc.public_ip, 8080};
  const auto d = net_.send_inbound(bogus, 0x08080808u, 51000);
  EXPECT_FALSE(d.delivered);
}

TEST_F(Section7Test, InboundNeedsNoPerFlowControllerWork) {
  const UeId ue = silver_ue(12);
  const auto svc = net_.expose_service(ue, 80);
  const auto installs = net_.controller().path_installs();
  for (std::uint16_t p = 50000; p < 50032; ++p)
    ASSERT_TRUE(net_.send_inbound(svc, 0x08080808u, p).delivered);
  EXPECT_EQ(net_.controller().path_installs(), installs);  // coarse, once
}

// --- offline recompaction ------------------------------------------------------

TEST_F(Section7Test, RecompactPreservesReachabilityAndNeverGrowsState) {
  // Install paths in adversarial (bs-major) order by touching many base
  // stations with several clauses.
  for (std::uint32_t bs = 0; bs < 30; bs += 3) {
    const UeId ue = silver_ue(bs);
    for (std::uint16_t port : {std::uint16_t{80}, std::uint16_t{1935},
                               std::uint16_t{5060}})
      ASSERT_TRUE(
          net_.send_uplink(net_.open_flow(ue, 0x08080808u, port), TcpFlag::kSyn)
              .delivered);
  }
  const auto r = net_.controller().recompact();
  EXPECT_LE(r.rules_after, r.rules_before);
  EXPECT_LE(r.tags_after, r.tags_before);

  // Fresh flows work after the rebuild (classifier tags were pushed).
  const UeId ue = silver_ue(29);
  const auto flow = net_.open_flow(ue, 0x08080809u, 1935);
  ASSERT_TRUE(net_.send_uplink(flow, TcpFlag::kSyn).delivered);
  ASSERT_TRUE(net_.send_downlink(flow).delivered);
}

TEST_F(Section7Test, RecompactRefusesDuringMigration) {
  const UeId ue = silver_ue(0);
  ASSERT_TRUE(
      net_.send_uplink(net_.open_flow(ue, 0x08080808u, 80), TcpFlag::kSyn)
          .delivered);
  SubscriberProfile p;
  p.plan = BillingPlan::kSilver;
  const auto* clause = net_.controller().policy().match(p, AppType::kWeb);
  (void)net_.controller().migrate_path(0, clause->id);
  EXPECT_THROW(net_.controller().recompact(), std::logic_error);
}

}  // namespace
}  // namespace softcell
