// Shard-brain proof corpus (DESIGN.md section 16): the partitioned brain
// (per-shard UE state + one shared core behind the flat-combining commit
// stage) must be OBSERVABLY identical to the legacy per-shard-clone
// controller.  Three layers of evidence:
//
//   1. Unit contracts on the commit stage and view lifecycle:
//      read-your-writes (a returned tag is in every snapshot loaded
//      after), warm-hit short-circuit, staleness healing after
//      out-of-band core mutations, canonical-fingerprint stability.
//   2. A scripted differential: the same attach / flow / handoff /
//      failover sequence replayed on a shard-brain network and a legacy
//      network must land on bit-identical control fingerprints.
//   3. The randomized chaos corpus: every seed's full event digest
//      (per-packet observables, order-sensitive FNV-1a) must match
//      between the two modes, across the same bands the slab
//      differential uses (default, runtime workers, shortcuts off).
#include "runtime/shard_brain.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "chaos/harness.hpp"
#include "runtime/sharded_controller.hpp"
#include "sim/network.hpp"

namespace softcell {
namespace {

constexpr Ipv4Addr kServer = 0x08080808u;

class ShardBrainTest : public ::testing::Test {
 protected:
  ShardBrainTest()
      : topo_({.k = 4, .seed = 3}),
        brain_(topo_, make_table1_policy(), {.shards = 4}) {}

  UeId provision(std::uint32_t provider = 0,
                 BillingPlan plan = BillingPlan::kSilver) {
    const UeId ue(next_++);
    SubscriberProfile p;
    p.ue = ue;
    p.provider = provider;
    p.plan = plan;
    brain_.provision_subscriber(ue, p);
    return ue;
  }

  ClauseId clause_for(AppType app) {
    SubscriberProfile p;
    p.provider = 0;
    p.plan = BillingPlan::kSilver;
    const auto* c = brain_.policy_snapshot()->match(p, app);
    EXPECT_NE(c, nullptr);
    return c->id;
  }

  CellularTopology topo_;
  ShardBrain brain_;
  std::uint32_t next_ = 1;
};

TEST_F(ShardBrainTest, CommitPublishesViewBeforeReturning) {
  const UeId ue = provision();
  const auto clause = clause_for(AppType::kWeb);
  const auto tag = brain_.request_policy_path(ue, 5, clause);
  // Read-your-writes: the snapshot loaded after the commit returned must
  // already carry the tag -- no "install done, view lagging" window.
  const auto view = brain_.path_view();
  const PolicyTag* seen = view->path(clause, 5);
  ASSERT_NE(seen, nullptr);
  EXPECT_EQ(*seen, tag);
  EXPECT_GT(view->version, 0u);
}

TEST_F(ShardBrainTest, WarmHitSkipsCommitStage) {
  const UeId ue = provision();
  const auto clause = clause_for(AppType::kWeb);
  const auto t1 = brain_.request_policy_path(ue, 2, clause);
  const auto version = brain_.path_view()->version;
  const auto installs = brain_.core().path_installs();
  // Second request resolves from the published view: same tag, no new
  // view version, no core install.
  const auto t2 = brain_.request_policy_path(ue, 2, clause);
  EXPECT_EQ(t1, t2);
  EXPECT_EQ(brain_.path_view()->version, version);
  EXPECT_EQ(brain_.core().path_installs(), installs);
}

TEST_F(ShardBrainTest, BatchTagsMatchSingleRequests) {
  const UeId ue = provision();
  const auto web = clause_for(AppType::kWeb);
  const auto voip = clause_for(AppType::kVoip);
  const std::vector<Controller::PathRequest> reqs = {
      {.bs = 1, .clause = web},
      {.bs = 3, .clause = voip},
      {.bs = 1, .clause = web},  // duplicate inside one batch
  };
  const auto tags = brain_.request_policy_paths(ue, reqs);
  ASSERT_EQ(tags.size(), 3u);
  EXPECT_EQ(tags[0], tags[2]);
  EXPECT_EQ(tags[0], brain_.request_policy_path(ue, 1, web));
  EXPECT_EQ(tags[1], brain_.request_policy_path(ue, 3, voip));
}

TEST_F(ShardBrainTest, ShardRoutingMatchesLegacyClones) {
  // Same splitmix64 partition as the legacy sharded controller, so the
  // differential corpus exercises identical per-shard request streams.
  ShardedController legacy(topo_, make_table1_policy(), {.shards = 4});
  ASSERT_EQ(brain_.shard_count(), legacy.shard_count());
  for (std::uint64_t u = 1; u <= 512; ++u)
    EXPECT_EQ(brain_.shard_of(UeId(u)), legacy.shard_of(UeId(u))) << u;
}

TEST_F(ShardBrainTest, FingerprintFoldInMatchesSingleBrain) {
  // Replay one request history against the brain and against a plain
  // single controller: the fold-in fingerprint must come out bit-equal.
  Controller single(topo_, make_table1_policy());
  const auto web = clause_for(AppType::kWeb);
  const auto video = clause_for(AppType::kVideo);
  for (std::uint32_t i = 1; i <= 24; ++i) {
    const UeId ue(1000 + i);
    SubscriberProfile p;
    p.ue = ue;
    p.provider = 0;
    p.plan = BillingPlan::kSilver;
    brain_.provision_subscriber(ue, p);
    single.provision_subscriber(ue, p);
    brain_.attach_ue(ue, i % 12, LocalUeId(i));
    single.attach_ue(ue, i % 12, LocalUeId(i));
    brain_.request_policy_path(ue, i % 12, web);
    single.request_policy_path(i % 12, web);
    if (i % 3 == 0) {
      brain_.request_policy_path(ue, i % 12, video);
      single.request_policy_path(i % 12, video);
    }
    if (i % 5 == 0) {
      brain_.detach_ue(ue);
      single.detach_ue(ue);
    }
  }
  EXPECT_EQ(brain_.state_fingerprint(), single.state_fingerprint());
}

TEST_F(ShardBrainTest, CanonicalFingerprintIsOrderIndependent) {
  // Two brains install the same (bs, clause) key set in opposite orders:
  // raw tag assignments differ, but recompact renumbers tags in canonical
  // clause-major order, so the canonical fingerprints must agree.  This is
  // the property that lets concurrent benches compare runs.
  const auto web = clause_for(AppType::kWeb);
  const auto voip = clause_for(AppType::kVoip);
  ShardBrain other(topo_, make_table1_policy(), {.shards = 4});
  const UeId ue = provision();
  SubscriberProfile p;
  p.ue = ue;
  p.provider = 0;
  p.plan = BillingPlan::kSilver;
  other.provision_subscriber(ue, p);
  for (std::uint32_t bs = 0; bs < 8; ++bs) {
    brain_.request_policy_path(ue, bs, web);
    brain_.request_policy_path(ue, bs, voip);
  }
  for (std::uint32_t bs = 8; bs-- > 0;) {
    other.request_policy_path(ue, bs, voip);
    other.request_policy_path(ue, bs, web);
  }
  EXPECT_EQ(brain_.canonical_fingerprint(), other.canonical_fingerprint());
}

TEST_F(ShardBrainTest, StaleViewHealsAfterDirectCoreMutation) {
  const UeId ue = provision();
  const auto clause = clause_for(AppType::kWeb);
  const auto old_tag = brain_.request_policy_path(ue, 4, clause);
  // Quiescent maintenance path: migrate straight on the core, bypassing
  // the commit stage.  The published view still holds the old tag...
  const auto mig = brain_.core().migrate_path(4, clause);
  ASSERT_EQ(mig.old_tag, old_tag);
  const auto stale_view = brain_.path_view();  // keep *stale alive
  const PolicyTag* stale = stale_view->path(clause, 4);
  ASSERT_NE(stale, nullptr);
  EXPECT_EQ(*stale, old_tag);
  // ...until the staleness mark forces the next consumer to republish.
  brain_.mark_view_stale();
  EXPECT_EQ(brain_.request_policy_path(ue, 4, clause), mig.new_tag);
  const auto healed_view = brain_.path_view();  // keep *healed alive
  const PolicyTag* healed = healed_view->path(clause, 4);
  ASSERT_NE(healed, nullptr);
  EXPECT_EQ(*healed, mig.new_tag);
}

TEST_F(ShardBrainTest, FailoverRebuildRepartitionsByShard) {
  std::vector<std::pair<UeId, std::uint32_t>> placed;
  for (std::uint32_t i = 1; i <= 16; ++i) {
    const UeId ue = provision();
    brain_.attach_ue(ue, i % 12, LocalUeId(i));
    placed.emplace_back(ue, i % 12);
  }
  const auto before = brain_.state_fingerprint();
  brain_.fail_primary_replica();
  brain_.rebuild_locations([&](const auto& emit) {
    for (const auto& [ue, bs] : placed)
      emit(ue, UeLocation{.bs = bs, .local = LocalUeId(ue.value())});
  });
  for (const auto& [ue, bs] : placed) {
    const auto loc = brain_.ue_location(ue);
    ASSERT_TRUE(loc) << "lost UE " << ue.value();
    EXPECT_EQ(loc->bs, bs);
  }
  // Location ops never bump store versions, so the fingerprint survives
  // the failover round-trip -- same invariant the legacy store holds.
  EXPECT_EQ(brain_.state_fingerprint(), before);
}

// --- scripted network differential -----------------------------------------
// One deterministic end-to-end script (attach, flows, handoff, failover)
// replayed under both brain modes: the control fingerprints must be
// bit-identical at every checkpoint.

std::vector<std::uint64_t> run_script(unsigned topo_seed) {
  SoftCellNetwork net(SoftCellConfig{.topo = {.k = 4, .seed = topo_seed}},
                      make_table1_policy());
  std::vector<std::uint64_t> checkpoints;
  std::vector<UeId> ues;
  std::vector<SoftCellNetwork::FlowHandle> flows;
  for (std::uint32_t i = 0; i < 10; ++i) {
    SubscriberProfile p;
    p.plan = i % 2 ? BillingPlan::kGold : BillingPlan::kSilver;
    const UeId ue = net.add_subscriber(p);
    net.attach(ue, i % 12);
    ues.push_back(ue);
    flows.push_back(net.open_flow(ue, kServer + i, 80));
    EXPECT_TRUE(net.send_uplink(flows.back(), TcpFlag::kSyn).delivered);
  }
  checkpoints.push_back(net.control_fingerprint());

  for (std::uint32_t i = 0; i < 10; i += 2) {
    const auto ticket = net.handoff(ues[i], (i + 5) % 12);
    // Pre-handoff downlink rides the BS-BS tunnel; it must be delivered
    // before completion tears the tunnel down (the flow then ends).
    EXPECT_TRUE(net.send_downlink(flows[i]).delivered);
    EXPECT_TRUE(net.send_uplink(flows[i], TcpFlag::kFin).delivered);
    net.complete_handoff(ticket);
  }
  checkpoints.push_back(net.control_fingerprint());

  net.fail_controller_primary_and_recover();
  for (std::uint32_t i = 0; i < 10; ++i) {
    const auto f = net.open_flow(ues[i], kServer + 100 + i, 1935);
    EXPECT_TRUE(net.send_uplink(f, TcpFlag::kSyn).delivered);
  }
  net.detach(ues[3]);
  net.detach(ues[7]);
  checkpoints.push_back(net.control_fingerprint());
  return checkpoints;
}

TEST(ShardBrainDifferential, ScriptedFingerprintsMatchLegacy) {
  for (const unsigned seed : {7u, 19u, 31u}) {
    std::vector<std::uint64_t> brain, legacy;
    {
      ScopedBrainMode mode(true);
      brain = run_script(seed);
    }
    {
      ScopedBrainMode mode(false);
      legacy = run_script(seed);
    }
    ASSERT_EQ(brain, legacy) << "topo seed " << seed;
  }
}

// --- randomized chaos differential ------------------------------------------
// Same corpus shape as the slab differential: 25 seeds spread over three
// bands (default, runtime workers, shortcuts off), each run twice -- brain
// on, brain off -- and the full order-sensitive event digests must match.

chaos::ChaosOptions corpus_options(std::uint64_t seed) {
  chaos::ChaosOptions opt;
  if (seed > 170 && seed <= 190) opt.runtime_workers = 2;
  if (seed > 190) opt.install_shortcuts = false;
  return opt;
}

TEST(ShardBrainDifferential, ChaosDigestsMatchLegacy) {
  // SOFTCELL_CHAOS_SEEDS shrinks the corpus for expensive reruns (tier1.sh
  // uses it under ASan/TSan); unset means a 25-seed spread.
  std::size_t n = 25;
  if (const char* env = std::getenv("SOFTCELL_CHAOS_SEEDS")) {
    const auto parsed = std::strtoull(env, nullptr, 10);
    if (parsed > 0) n = static_cast<std::size_t>(parsed);
  }
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::uint64_t seed = 1 + (i * 199) / (n > 1 ? n - 1 : 1);
    const auto sc = chaos::Scenario::generate(seed);
    std::uint64_t brain_digest = 0, legacy_digest = 0;
    {
      ScopedBrainMode mode(true);
      const auto r = chaos::run_scenario(sc, corpus_options(seed));
      ASSERT_TRUE(r.ok) << "shard brain, seed " << seed;
      brain_digest = r.digest;
    }
    {
      ScopedBrainMode mode(false);
      const auto r = chaos::run_scenario(sc, corpus_options(seed));
      ASSERT_TRUE(r.ok) << "legacy brain, seed " << seed;
      legacy_digest = r.digest;
    }
    ASSERT_EQ(brain_digest, legacy_digest) << "seed " << seed;
  }
}

}  // namespace
}  // namespace softcell
