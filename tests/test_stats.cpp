#include "util/stats.hpp"

#include <gtest/gtest.h>

namespace softcell {
namespace {

TEST(SampleSet, PercentileNearestRank) {
  SampleSet s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.percentile(50), 50.0);
  EXPECT_DOUBLE_EQ(s.percentile(99), 99.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
  EXPECT_DOUBLE_EQ(s.percentile(1), 1.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 100.0);
  EXPECT_DOUBLE_EQ(s.mean(), 50.5);
}

TEST(SampleSet, SingleSample) {
  SampleSet s;
  s.add(7);
  EXPECT_DOUBLE_EQ(s.percentile(0), 7.0);
  EXPECT_DOUBLE_EQ(s.percentile(99.999), 7.0);
  EXPECT_DOUBLE_EQ(s.median(), 7.0);
}

TEST(SampleSet, EmptyThrows) {
  SampleSet s;
  EXPECT_THROW((void)s.percentile(50), std::logic_error);
  EXPECT_THROW((void)s.mean(), std::logic_error);
  EXPECT_EQ(s.cdf_at(1.0), 0.0);
}

TEST(SampleSet, OutOfRangePercentileThrows) {
  SampleSet s;
  s.add(1);
  EXPECT_THROW((void)s.percentile(-1), std::invalid_argument);
  EXPECT_THROW((void)s.percentile(101), std::invalid_argument);
}

TEST(SampleSet, CdfAt) {
  SampleSet s;
  for (int v : {1, 2, 2, 3}) s.add(v);
  EXPECT_DOUBLE_EQ(s.cdf_at(0), 0.0);
  EXPECT_DOUBLE_EQ(s.cdf_at(1), 0.25);
  EXPECT_DOUBLE_EQ(s.cdf_at(2), 0.75);
  EXPECT_DOUBLE_EQ(s.cdf_at(3), 1.0);
  EXPECT_DOUBLE_EQ(s.cdf_at(99), 1.0);
}

TEST(SampleSet, CdfPointsMonotone) {
  SampleSet s;
  for (int i = 0; i < 1000; ++i) s.add(i % 37);
  const auto pts = s.cdf_points(20);
  ASSERT_EQ(pts.size(), 20u);
  for (std::size_t i = 1; i < pts.size(); ++i) {
    EXPECT_LE(pts[i - 1].first, pts[i].first);
    EXPECT_LT(pts[i - 1].second, pts[i].second);
  }
  EXPECT_DOUBLE_EQ(pts.back().second, 1.0);
}

TEST(SampleSet, InterleavedAddAndQuery) {
  SampleSet s;
  s.add(10);
  EXPECT_DOUBLE_EQ(s.median(), 10.0);
  s.add(20);
  s.add(0);
  EXPECT_DOUBLE_EQ(s.median(), 10.0);
  EXPECT_DOUBLE_EQ(s.max(), 20.0);
}

TEST(RunningStat, Basics) {
  RunningStat r;
  EXPECT_EQ(r.count(), 0u);
  EXPECT_DOUBLE_EQ(r.mean(), 0.0);
  for (double v : {3.0, 1.0, 2.0}) r.add(v);
  EXPECT_EQ(r.count(), 3u);
  EXPECT_DOUBLE_EQ(r.mean(), 2.0);
  EXPECT_DOUBLE_EQ(r.min(), 1.0);
  EXPECT_DOUBLE_EQ(r.max(), 3.0);
}

}  // namespace
}  // namespace softcell
