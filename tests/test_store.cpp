#include "ctrl/store.hpp"

#include <gtest/gtest.h>

namespace softcell {
namespace {

SubscriberProfile profile(std::uint32_t provider) {
  SubscriberProfile p;
  p.provider = provider;
  return p;
}

TEST(ControlStore, ProfileRoundTrip) {
  ControlStore s(3);
  s.put_profile(UeId(1), profile(7));
  ASSERT_TRUE(s.profile(UeId(1)));
  EXPECT_EQ(s.profile(UeId(1))->provider, 7u);
  EXPECT_FALSE(s.profile(UeId(2)));
}

TEST(ControlStore, PathRoundTrip) {
  ControlStore s(2);
  s.put_path(ClauseId(3), 12, PolicyTag(9));
  ASSERT_TRUE(s.path(ClauseId(3), 12));
  EXPECT_EQ(*s.path(ClauseId(3), 12), PolicyTag(9));
  EXPECT_FALSE(s.path(ClauseId(3), 13));
  s.erase_path(ClauseId(3), 12);
  EXPECT_FALSE(s.path(ClauseId(3), 12));
}

TEST(ControlStore, ReplicasStayConsistent) {
  ControlStore s(3);
  for (int i = 0; i < 10; ++i) {
    s.put_profile(UeId(i), profile(i));
    s.put_path(ClauseId(i), i, PolicyTag(static_cast<std::uint16_t>(i)));
  }
  EXPECT_TRUE(s.replicas_consistent());
}

TEST(ControlStore, SlowStateSurvivesPrimaryFailure) {
  ControlStore s(3);
  s.put_profile(UeId(1), profile(5));
  s.put_path(ClauseId(2), 4, PolicyTag(8));
  s.set_location(UeId(1), UeLocation{4, LocalUeId(2)});
  s.fail_primary();
  EXPECT_EQ(s.replica_count(), 2u);
  // Slow state survived...
  ASSERT_TRUE(s.profile(UeId(1)));
  EXPECT_EQ(s.profile(UeId(1))->provider, 5u);
  EXPECT_EQ(*s.path(ClauseId(2), 4), PolicyTag(8));
  // ...but locations are gone until rebuilt.
  EXPECT_FALSE(s.location(UeId(1)));
}

TEST(ControlStore, LocationRebuildFromAgents) {
  ControlStore s(2);
  s.put_profile(UeId(1), profile(0));
  s.set_location(UeId(1), UeLocation{4, LocalUeId(2)});
  s.fail_primary();
  s.rebuild_locations([](const std::function<void(UeId, UeLocation)>& sink) {
    sink(UeId(1), UeLocation{4, LocalUeId(2)});
    sink(UeId(9), UeLocation{7, LocalUeId(0)});
  });
  ASSERT_TRUE(s.location(UeId(1)));
  EXPECT_EQ(s.location(UeId(1))->bs, 4u);
  EXPECT_EQ(s.attached_ues(), 2u);
}

TEST(ControlStore, SingleReplicaCannotFailOver) {
  ControlStore s(1);
  EXPECT_THROW(s.fail_primary(), std::logic_error);
  EXPECT_THROW(ControlStore(0), std::invalid_argument);
}

TEST(ControlStore, LocationsClearAndUpdate) {
  ControlStore s(2);
  s.set_location(UeId(1), UeLocation{1, LocalUeId(0)});
  s.set_location(UeId(1), UeLocation{2, LocalUeId(5)});
  ASSERT_TRUE(s.location(UeId(1)));
  EXPECT_EQ(s.location(UeId(1))->bs, 2u);
  s.clear_location(UeId(1));
  EXPECT_FALSE(s.location(UeId(1)));
}

TEST(ControlStore, VersionAdvancesOnWrites) {
  ControlStore s(2);
  const auto v0 = s.version();
  s.put_profile(UeId(1), profile(1));
  EXPECT_GT(s.version(), v0);
}

}  // namespace
}  // namespace softcell
