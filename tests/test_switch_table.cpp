#include "dataplane/switch_table.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace softcell {
namespace {

constexpr Direction kDl = Direction::kDownlink;
constexpr Direction kUl = Direction::kUplink;

NodeId node(std::uint32_t v) { return NodeId(v); }
RuleAction to(std::uint32_t v) { return RuleAction{node(v), std::nullopt}; }

TEST(SwitchTable, DefaultRuleMatchesAnyAddress) {
  SwitchTable t;
  t.add_default(kDl, InPortSpec::any(), PolicyTag(1), to(10));
  const auto hit = t.lookup(kDl, node(99), PolicyTag(1), 0x0A000001u);
  ASSERT_TRUE(hit);
  EXPECT_EQ(hit->action.out_to, node(10));
  EXPECT_EQ(hit->shape, RuleShape::kTagOnly);
  EXPECT_FALSE(t.lookup(kDl, node(99), PolicyTag(2), 0x0A000001u));
  EXPECT_EQ(t.rule_count(), 1u);
}

TEST(SwitchTable, DirectionsAreIndependent) {
  SwitchTable t;
  t.add_default(kDl, InPortSpec::any(), PolicyTag(1), to(10));
  EXPECT_FALSE(t.lookup(kUl, node(0), PolicyTag(1), 0x0A000001u));
  t.add_default(kUl, InPortSpec::any(), PolicyTag(1), to(20));
  EXPECT_EQ(t.lookup(kUl, node(0), PolicyTag(1), 0u)->action.out_to, node(20));
  EXPECT_EQ(t.lookup(kDl, node(0), PolicyTag(1), 0u)->action.out_to, node(10));
}

TEST(SwitchTable, PrefixOverridesDefault) {
  SwitchTable t;
  const Prefix pre(0x0A010000u, 16);
  t.add_default(kDl, InPortSpec::any(), PolicyTag(1), to(10));
  t.add_prefix_rule(kDl, InPortSpec::any(), PolicyTag(1), pre, to(20));
  EXPECT_EQ(t.lookup(kDl, node(0), PolicyTag(1), 0x0A010001u)->action.out_to,
            node(20));
  EXPECT_EQ(t.lookup(kDl, node(0), PolicyTag(1), 0x0A020001u)->action.out_to,
            node(10));
  EXPECT_EQ(t.rule_count(), 2u);
}

TEST(SwitchTable, LongestPrefixWins) {
  SwitchTable t;
  t.add_prefix_rule(kDl, InPortSpec::any(), PolicyTag(1),
                    Prefix(0x0A000000u, 8), to(1));
  t.add_prefix_rule(kDl, InPortSpec::any(), PolicyTag(1),
                    Prefix(0x0A010000u, 16), to(2));
  t.add_prefix_rule(kDl, InPortSpec::any(), PolicyTag(1),
                    Prefix(0x0A010100u, 24), to(3));
  EXPECT_EQ(t.lookup(kDl, node(0), PolicyTag(1), 0x0A010101u)->action.out_to,
            node(3));
  EXPECT_EQ(t.lookup(kDl, node(0), PolicyTag(1), 0x0A010201u)->action.out_to,
            node(2));
  EXPECT_EQ(t.lookup(kDl, node(0), PolicyTag(1), 0x0A990001u)->action.out_to,
            node(1));
}

TEST(SwitchTable, SiblingMergeReducesRuleCount) {
  SwitchTable t;
  const Prefix a(0x0A000000u, 24);
  const Prefix b = *a.sibling();
  t.add_prefix_rule(kDl, InPortSpec::any(), PolicyTag(1), a, to(5));
  EXPECT_EQ(t.rule_count(), 1u);
  t.add_prefix_rule(kDl, InPortSpec::any(), PolicyTag(1), b, to(5));
  // The two siblings merged into their /23 parent.
  EXPECT_EQ(t.rule_count(), 1u);
  EXPECT_EQ(t.lookup(kDl, node(0), PolicyTag(1), a.addr())->action.out_to,
            node(5));
  EXPECT_EQ(t.lookup(kDl, node(0), PolicyTag(1), b.addr())->action.out_to,
            node(5));
}

TEST(SwitchTable, MergeCascadesUpward) {
  SwitchTable t;
  // Four consecutive aligned /24s with the same action -> one /22.
  for (std::uint32_t i = 0; i < 4; ++i)
    t.add_prefix_rule(kDl, InPortSpec::any(), PolicyTag(1),
                      Prefix(0x0A000000u + (i << 8), 24), to(5));
  EXPECT_EQ(t.rule_count(), 1u);
  EXPECT_EQ(t.type1_count(), 1u);
}

TEST(SwitchTable, NoMergeAcrossDifferentActions) {
  SwitchTable t;
  const Prefix a(0x0A000000u, 24);
  const Prefix b = *a.sibling();
  t.add_prefix_rule(kDl, InPortSpec::any(), PolicyTag(1), a, to(5));
  t.add_prefix_rule(kDl, InPortSpec::any(), PolicyTag(1), b, to(6));
  EXPECT_EQ(t.rule_count(), 2u);
  EXPECT_EQ(t.lookup(kDl, node(0), PolicyTag(1), a.addr())->action.out_to,
            node(5));
  EXPECT_EQ(t.lookup(kDl, node(0), PolicyTag(1), b.addr())->action.out_to,
            node(6));
}

TEST(SwitchTable, NoMergeWhenNotSiblings) {
  SwitchTable t;
  // Adjacent but not siblings: 10.0.1/24 and 10.0.2/24.
  t.add_prefix_rule(kDl, InPortSpec::any(), PolicyTag(1),
                    Prefix(0x0A000100u, 24), to(5));
  t.add_prefix_rule(kDl, InPortSpec::any(), PolicyTag(1),
                    Prefix(0x0A000200u, 24), to(5));
  EXPECT_EQ(t.rule_count(), 2u);
}

TEST(SwitchTable, CanAggregateReportsExactlySiblingSameAction) {
  SwitchTable t;
  const Prefix a(0x0A000000u, 24);
  t.add_prefix_rule(kDl, InPortSpec::any(), PolicyTag(1), a, to(5));
  EXPECT_TRUE(
      t.can_aggregate(kDl, InPortSpec::any(), PolicyTag(1), *a.sibling(), to(5)));
  EXPECT_FALSE(
      t.can_aggregate(kDl, InPortSpec::any(), PolicyTag(1), *a.sibling(), to(6)));
  EXPECT_FALSE(t.can_aggregate(kDl, InPortSpec::any(), PolicyTag(2),
                               *a.sibling(), to(5)));
  EXPECT_FALSE(t.can_aggregate(kDl, InPortSpec::any(), PolicyTag(1),
                               Prefix(0x0B000000u, 24), to(5)));
}

TEST(SwitchTable, InPortClassBeatsWildcard) {
  SwitchTable t;
  const auto mb = InPortSpec::from(node(77));
  t.add_default(kDl, InPortSpec::any(), PolicyTag(1), to(10));
  t.add_default(kDl, mb, PolicyTag(1), to(20));
  // Packet arriving from the middlebox hits the specific class...
  EXPECT_EQ(t.lookup(kDl, node(77), PolicyTag(1), 0u)->action.out_to, node(20));
  // ...everyone else falls to the wildcard class.
  EXPECT_EQ(t.lookup(kDl, node(3), PolicyTag(1), 0u)->action.out_to, node(10));
}

TEST(SwitchTable, SpecificClassMissFallsThroughToWildcard) {
  SwitchTable t;
  const auto mb = InPortSpec::from(node(77));
  const Prefix pre(0x0A010000u, 16);
  t.add_default(kDl, InPortSpec::any(), PolicyTag(1), to(10));
  t.add_prefix_rule(kDl, mb, PolicyTag(1), pre, to(20));
  // From the middlebox, an address outside `pre` misses the specific class
  // entirely and must fall through to the wildcard default.
  EXPECT_EQ(t.lookup(kDl, node(77), PolicyTag(1), 0x0B000001u)->action.out_to,
            node(10));
  EXPECT_EQ(t.lookup(kDl, node(77), PolicyTag(1), 0x0A010001u)->action.out_to,
            node(20));
}

TEST(SwitchTable, ResolveReportsEntryLocation) {
  SwitchTable t;
  const Prefix pre(0x0A010000u, 16);
  t.add_default(kDl, InPortSpec::any(), PolicyTag(1), to(10));
  const auto r1 = t.resolve(kDl, InPortSpec::any(), PolicyTag(1), pre);
  ASSERT_TRUE(r1);
  EXPECT_TRUE(r1->is_default);
  t.add_prefix_rule(kDl, InPortSpec::any(), PolicyTag(1), pre, to(20));
  const auto r2 = t.resolve(kDl, InPortSpec::any(), PolicyTag(1), pre);
  ASSERT_TRUE(r2);
  EXPECT_FALSE(r2->is_default);
  EXPECT_EQ(r2->covering, pre);
  EXPECT_EQ(r2->action.out_to, node(20));
}

TEST(SwitchTable, ResolveIgnoresLongerPrefixes) {
  SwitchTable t;
  const Prefix bs(0x0A010000u, 16);
  const Prefix ue(0x0A010001u, 32);  // a /32 mobility rule under bs
  t.add_prefix_rule(kDl, InPortSpec::any(), PolicyTag(1), ue, to(9));
  // Resolution for the whole /16 must not be hijacked by the /32.
  EXPECT_FALSE(t.resolve(kDl, InPortSpec::any(), PolicyTag(1), bs));
}

TEST(SwitchTable, RefcountsKeepSharedEntriesAlive) {
  SwitchTable t;
  t.add_default(kDl, InPortSpec::any(), PolicyTag(1), to(10));
  t.add_default(kDl, InPortSpec::any(), PolicyTag(1), to(10));  // 2nd path
  t.release_default(kDl, InPortSpec::any(), PolicyTag(1));
  EXPECT_TRUE(t.lookup(kDl, node(0), PolicyTag(1), 0u));
  t.release_default(kDl, InPortSpec::any(), PolicyTag(1));
  EXPECT_FALSE(t.lookup(kDl, node(0), PolicyTag(1), 0u));
  EXPECT_EQ(t.rule_count(), 0u);
}

TEST(SwitchTable, ConflictingDefaultThrows) {
  SwitchTable t;
  t.add_default(kDl, InPortSpec::any(), PolicyTag(1), to(10));
  EXPECT_THROW(t.add_default(kDl, InPortSpec::any(), PolicyTag(1), to(11)),
               std::logic_error);
}

TEST(SwitchTable, ExactConflictingPrefixThrows) {
  SwitchTable t;
  const Prefix pre(0x0A010000u, 16);
  t.add_prefix_rule(kDl, InPortSpec::any(), PolicyTag(1), pre, to(10));
  EXPECT_THROW(
      t.add_prefix_rule(kDl, InPortSpec::any(), PolicyTag(1), pre, to(11)),
      std::logic_error);
}

TEST(SwitchTable, MoreSpecificOverrideUnderCoveringEntry) {
  SwitchTable t;
  const Prefix parent(0x0A000000u, 15);
  const Prefix child(0x0A010000u, 16);
  t.add_prefix_rule(kDl, InPortSpec::any(), PolicyTag(1), parent, to(10));
  t.add_prefix_rule(kDl, InPortSpec::any(), PolicyTag(1), child, to(20));
  EXPECT_EQ(t.rule_count(), 2u);
  EXPECT_EQ(t.lookup(kDl, node(0), PolicyTag(1), 0x0A010001u)->action.out_to,
            node(20));
  EXPECT_EQ(t.lookup(kDl, node(0), PolicyTag(1), 0x0A000001u)->action.out_to,
            node(10));
}

TEST(SwitchTable, ReleaseMergedEntryViaEitherChild) {
  SwitchTable t;
  const Prefix a(0x0A000000u, 24);
  const Prefix b = *a.sibling();
  t.add_prefix_rule(kDl, InPortSpec::any(), PolicyTag(1), a, to(5));
  t.add_prefix_rule(kDl, InPortSpec::any(), PolicyTag(1), b, to(5));
  ASSERT_EQ(t.rule_count(), 1u);  // merged into parent, refcount 2
  t.release_prefix_rule(kDl, InPortSpec::any(), PolicyTag(1), a);
  EXPECT_EQ(t.rule_count(), 1u);  // still referenced by b's path
  t.release_prefix_rule(kDl, InPortSpec::any(), PolicyTag(1), b);
  EXPECT_EQ(t.rule_count(), 0u);
}

TEST(SwitchTable, ReleaseUnknownThrows) {
  SwitchTable t;
  EXPECT_THROW(t.release_default(kDl, InPortSpec::any(), PolicyTag(1)),
               std::logic_error);
  EXPECT_THROW(t.release_prefix_rule(kDl, InPortSpec::any(), PolicyTag(1),
                                     Prefix(0u, 8)),
               std::logic_error);
  EXPECT_THROW(t.release_location_rule(kDl, Prefix(0u, 8)), std::logic_error);
}

TEST(SwitchTable, LocationTierIsLowestPriority) {
  SwitchTable t;
  const Prefix pre(0x0A010000u, 16);
  t.add_location_rule(kDl, pre, to(30));
  EXPECT_EQ(t.lookup(kDl, node(0), PolicyTag(1), 0x0A010001u)->shape,
            RuleShape::kLocationOnly);
  t.add_default(kDl, InPortSpec::any(), PolicyTag(1), to(10));
  // Tag rules beat location rules (section 7 priority order).
  EXPECT_EQ(t.lookup(kDl, node(0), PolicyTag(1), 0x0A010001u)->shape,
            RuleShape::kTagOnly);
  // Other tags still fall to the location tier.
  EXPECT_EQ(t.lookup(kDl, node(0), PolicyTag(2), 0x0A010001u)->shape,
            RuleShape::kLocationOnly);
}

TEST(SwitchTable, LocationMergeAndRelease) {
  SwitchTable t;
  const Prefix a(0x0A000000u, 24);
  const Prefix b = *a.sibling();
  t.add_location_rule(kDl, a, to(5));
  t.add_location_rule(kDl, b, to(5));
  EXPECT_EQ(t.location_count(), 1u);
  t.release_location_rule(kDl, a);
  t.release_location_rule(kDl, b);
  EXPECT_EQ(t.location_count(), 0u);
}

TEST(SwitchTable, TagUsageTracksLiveTags) {
  SwitchTable t;
  t.add_default(kDl, InPortSpec::any(), PolicyTag(1), to(10));
  t.add_prefix_rule(kDl, InPortSpec::any(), PolicyTag(2),
                    Prefix(0x0A000000u, 16), to(11));
  EXPECT_EQ(t.tag_usage(kDl).size(), 2u);
  EXPECT_TRUE(t.tag_usage(kUl).empty());
  t.release_default(kDl, InPortSpec::any(), PolicyTag(1));
  EXPECT_EQ(t.tag_usage(kDl).size(), 1u);
  EXPECT_TRUE(t.tag_usage(kDl).contains(PolicyTag(2)));
}

// Property: random installs/releases keep rule_count equal to the sum of
// entries, and lookups are always consistent with the most recent install.
TEST(SwitchTableProperty, CountInvariantUnderChurn) {
  SwitchTable t;
  Rng rng(17);
  std::vector<std::pair<PolicyTag, Prefix>> live;
  for (int step = 0; step < 3000; ++step) {
    if (live.empty() || rng.next_bernoulli(0.6)) {
      const PolicyTag tag(static_cast<std::uint16_t>(rng.next_below(8)));
      // Aligned /24s in a narrow range to provoke merges.
      const Prefix pre(0x0A000000u + (static_cast<Ipv4Addr>(rng.next_below(64))
                                      << 8),
                       24);
      const RuleAction act = to(1);  // same action everywhere -> merge-heavy
      t.add_prefix_rule(kDl, InPortSpec::any(), tag, pre, act);
      live.emplace_back(tag, pre);
    } else {
      const auto idx = rng.next_below(live.size());
      const auto [tag, pre] = live[idx];
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
      t.release_prefix_rule(kDl, InPortSpec::any(), tag, pre);
    }
    EXPECT_EQ(t.rule_count(), t.type1_count() + t.type2_count() +
                                  t.type3_count());
    // Everything still live must route correctly.
    for (const auto& [tag, pre] : live) {
      const auto hit = t.lookup(kDl, node(0), tag, pre.addr());
      ASSERT_TRUE(hit);
      EXPECT_EQ(hit->action.out_to, node(1));
    }
  }
}

}  // namespace
}  // namespace softcell
