// Parameterized switch-table property sweeps: LPM correctness and
// aggregation exactness across prefix lengths and install orders.
#include <gtest/gtest.h>

#include <map>

#include "dataplane/switch_table.hpp"
#include "packet/locip.hpp"
#include "util/rng.hpp"

namespace softcell {
namespace {

constexpr Direction kDl = Direction::kDownlink;

RuleAction to(std::uint32_t v) { return RuleAction{NodeId(v), std::nullopt}; }

// --- aggregation exactness across prefix lengths ---------------------------

class MergeSweep : public ::testing::TestWithParam<int> {};

TEST_P(MergeSweep, FullSiblingFanMergesToOneRule) {
  // Install every /L prefix under a fixed /(L-4) parent with the same
  // action: 16 aligned prefixes must collapse to exactly one entry.
  const auto len = static_cast<std::uint8_t>(GetParam());
  SwitchTable t;
  const Prefix parent(0x0A000000u, static_cast<std::uint8_t>(len - 4));
  for (std::uint32_t i = 0; i < 16; ++i) {
    const Ipv4Addr addr = parent.addr() | (i << (32 - len));
    t.add_prefix_rule(kDl, InPortSpec::any(), PolicyTag(1), Prefix(addr, len),
                      to(9));
  }
  EXPECT_EQ(t.rule_count(), 1u) << "len=" << int(len);
  // Lookup anywhere under the parent resolves.
  Rng rng(1);
  for (int i = 0; i < 64; ++i) {
    const Ipv4Addr probe =
        parent.addr() |
        (static_cast<Ipv4Addr>(rng.next_u64()) & ~(~0u << (32 - parent.len())));
    const auto hit = t.lookup(kDl, NodeId(0), PolicyTag(1), probe);
    ASSERT_TRUE(hit);
    EXPECT_EQ(hit->action.out_to, NodeId(9));
  }
}

TEST_P(MergeSweep, AlternatingActionsNeverMerge) {
  const auto len = static_cast<std::uint8_t>(GetParam());
  SwitchTable t;
  const Prefix parent(0x0A000000u, static_cast<std::uint8_t>(len - 4));
  for (std::uint32_t i = 0; i < 16; ++i) {
    const Ipv4Addr addr = parent.addr() | (i << (32 - len));
    t.add_prefix_rule(kDl, InPortSpec::any(), PolicyTag(1), Prefix(addr, len),
                      to(i % 2));
  }
  EXPECT_EQ(t.rule_count(), 16u);
  for (std::uint32_t i = 0; i < 16; ++i) {
    const Ipv4Addr addr = parent.addr() | (i << (32 - len));
    EXPECT_EQ(t.lookup(kDl, NodeId(0), PolicyTag(1), addr)->action.out_to,
              NodeId(i % 2));
  }
}

INSTANTIATE_TEST_SUITE_P(Lengths, MergeSweep,
                         ::testing::Values(8, 12, 16, 20, 24, 28, 32));

// --- LPM vs a reference model under random churn ----------------------------

class LpmChurnSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LpmChurnSweep, MatchesReferenceModel) {
  // Disciplined install family, as the aggregation engine produces it: all
  // entries at one base-station prefix length (here /24) plus /32 host
  // overrides.  The table merges aggressively, but merges preserve
  // semantics, so lookups must agree with a naive reference everywhere.
  SwitchTable t;
  Rng rng(GetParam());
  std::map<Ipv4Addr, NodeId> by24;   // /24 -> action
  std::map<Ipv4Addr, NodeId> by32;   // /32 -> action

  for (int i = 0; i < 400; ++i) {
    if (rng.next_bernoulli(0.7)) {
      const Prefix pre(
          0x0A000000u | (static_cast<Ipv4Addr>(rng.next_below(256)) << 8), 24);
      const auto it = by24.find(pre.addr());
      // Same-prefix re-installs must repeat the action (engine discipline:
      // one path owns each (tag, prefix)); new prefixes pick any action.
      const NodeId out = it != by24.end()
                             ? it->second
                             : NodeId(static_cast<std::uint32_t>(
                                   rng.next_below(4)));
      t.add_prefix_rule(kDl, InPortSpec::any(), PolicyTag(1), pre, {out, {}});
      by24[pre.addr()] = out;
    } else {
      const Ipv4Addr host =
          0x0A000000u | static_cast<Ipv4Addr>(rng.next_below(1u << 16));
      const Prefix pre(host, 32);
      const auto it = by32.find(host);
      const NodeId out = it != by32.end()
                             ? it->second
                             : NodeId(static_cast<std::uint32_t>(
                                   4 + rng.next_below(4)));
      t.add_prefix_rule(kDl, InPortSpec::any(), PolicyTag(1), pre, {out, {}});
      by32[host] = out;
    }
  }

  Rng probe_rng(GetParam() * 31 + 1);
  for (int i = 0; i < 4000; ++i) {
    const Ipv4Addr addr =
        0x0A000000u | static_cast<Ipv4Addr>(probe_rng.next_below(1u << 16));
    const auto hit = t.lookup(kDl, NodeId(0), PolicyTag(1), addr);
    if (const auto h32 = by32.find(addr); h32 != by32.end()) {
      ASSERT_TRUE(hit.has_value()) << to_dotted(addr);
      EXPECT_EQ(hit->action.out_to, h32->second) << to_dotted(addr);
    } else if (const auto h24 = by24.find(addr & 0xFFFFFF00u);
               h24 != by24.end()) {
      ASSERT_TRUE(hit.has_value()) << to_dotted(addr);
      EXPECT_EQ(hit->action.out_to, h24->second) << to_dotted(addr);
    } else {
      EXPECT_FALSE(hit.has_value()) << to_dotted(addr);
    }
  }
  // Aggregation really happened: far fewer entries than installs.
  EXPECT_LT(t.rule_count(), by24.size() + by32.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, LpmChurnSweep,
                         ::testing::Values(11ull, 22ull, 33ull, 44ull, 55ull));

// --- port codec splits --------------------------------------------------------

class CodecSweep : public ::testing::TestWithParam<int> {};

TEST_P(CodecSweep, TagAndSlotPartitionThePort) {
  const auto bits = static_cast<std::uint8_t>(GetParam());
  const PortCodec codec(bits);
  EXPECT_EQ(std::uint32_t{codec.max_tags()} * codec.max_flows_per_ue(),
            0x10000u);
  // Round-trip the extremes.
  const PolicyTag top(static_cast<std::uint16_t>(codec.max_tags() - 1));
  const auto slot_top =
      static_cast<std::uint16_t>(codec.max_flows_per_ue() - 1);
  const auto port = codec.encode(top, slot_top);
  EXPECT_EQ(codec.tag_of(port), top);
  EXPECT_EQ(codec.flow_slot_of(port), slot_top);
  EXPECT_EQ(codec.encode(PolicyTag(0), 0), 0);
}

INSTANTIATE_TEST_SUITE_P(Bits, CodecSweep,
                         ::testing::Values(1, 4, 8, 10, 12, 15));

}  // namespace
}  // namespace softcell
