// softcell::telemetry -- registry fold determinism, collector plumbing,
// span/flight-recorder behaviour, and exporter well-formedness.
//
// The concurrency cases are the ones tier1.sh repeats under TSan
// (`ctest -L concurrency`): four writer threads hammer one counter and one
// histogram through the per-thread shards while a reader folds; after
// join the fold must be exact, and every mid-race fold must be monotonic.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "telemetry/export.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/trace.hpp"

namespace softcell::telemetry {
namespace {

constexpr int kWriters = 4;
constexpr std::uint64_t kAddsPerWriter = 50'000;

TEST(Registry, CounterFoldsExactlyUnderConcurrentWriters) {
  Registry registry;
  Counter& c = registry.counter("test.requests");
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kAddsPerWriter; ++i) c.add();
    });
  }
  for (auto& t : writers) t.join();
  EXPECT_EQ(c.value(), kWriters * kAddsPerWriter);

  const Snapshot snap = registry.collect();
  EXPECT_EQ(snap.counter_value("test.requests"), kWriters * kAddsPerWriter);
}

TEST(Registry, CounterFoldIsMonotonicWhileWritersRace) {
  Registry registry;
  Counter& c = registry.counter("test.racing");
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) c.add();
    });
  }
  std::uint64_t last = 0;
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t now = c.value();
    EXPECT_GE(now, last);
    last = now;
  }
  stop.store(true);
  for (auto& t : writers) t.join();
  EXPECT_GE(c.value(), last);
}

TEST(Registry, HistogramFoldsExactlyUnderConcurrentWriters) {
  Registry registry;
  Histogram& h = registry.histogram("test.latency_ns");
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&h, w] {
      for (std::uint64_t i = 0; i < kAddsPerWriter; ++i) {
        h.record((i % 1024) + static_cast<std::uint64_t>(w));
      }
    });
  }
  for (auto& t : writers) t.join();
  const auto buckets = h.fold();
  std::uint64_t total = 0;
  for (const std::uint64_t b : buckets) total += b;
  EXPECT_EQ(total, kWriters * kAddsPerWriter);
}

TEST(Registry, MetricReferencesAreStableAndNamed) {
  Registry registry;
  Counter& a = registry.counter("alpha");
  Gauge& g = registry.gauge("gamma");
  // Same name -> same object (node-based storage, cacheable references).
  EXPECT_EQ(&a, &registry.counter("alpha"));
  EXPECT_EQ(&g, &registry.gauge("gamma"));
  a.add(3);
  g.set(-7);
  const Snapshot snap = registry.collect();
  EXPECT_EQ(snap.counter_value("alpha"), 3u);
  const Sample* gs = snap.find("gamma");
  ASSERT_NE(gs, nullptr);
  EXPECT_EQ(gs->type, Sample::Type::kGauge);
  EXPECT_EQ(gs->value, -7);
}

TEST(Registry, CollectorsRunOnCollectAndUnregisterViaHandle) {
  Registry registry;
  int calls = 0;
  {
    Registry::CollectorHandle handle =
        registry.add_collector([&calls](MetricSink& sink) {
          ++calls;
          sink.counter("collected.value", 42);
        });
    const Snapshot snap = registry.collect();
    EXPECT_EQ(calls, 1);
    EXPECT_EQ(snap.counter_value("collected.value"), 42u);
  }
  // Handle destroyed: the collector must no longer run.
  const Snapshot snap = registry.collect();
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(snap.find("collected.value"), nullptr);
}

TEST(Snapshot, DuplicateNamesMerge) {
  // Two subsystems (e.g. the chaos twin's second network) reporting under
  // one name: counters sum, gauges keep the last write.
  Snapshot snap;
  snap.counter("dup.count", 10);
  snap.counter("dup.count", 32);
  snap.gauge("dup.gauge", 5);
  snap.gauge("dup.gauge", 9);
  std::vector<std::uint64_t> buckets(kHistogramBuckets, 0);
  buckets[3] = 2;
  snap.histogram("dup.hist", buckets);
  snap.histogram("dup.hist", buckets);
  snap.finish();
  EXPECT_EQ(snap.counter_value("dup.count"), 42u);
  EXPECT_EQ(snap.find("dup.gauge")->value, 9);
  EXPECT_EQ(snap.find("dup.hist")->buckets[3], 4u);
  EXPECT_EQ(snap.find("dup.hist")->count, 4u);
}

TEST(HistogramGeometry, MatchesRuntimeConvention) {
  // Unit buckets below the first splittable octave.
  EXPECT_EQ(histogram_bucket_of(0), 0u);
  EXPECT_EQ(histogram_bucket_of(1), 1u);
  EXPECT_EQ(histogram_bucket_of(2), 2u);
  EXPECT_EQ(histogram_bucket_of(3), 3u);
  // First log-linear octave [4, 8): one value per sub-bucket.
  EXPECT_EQ(histogram_bucket_of(4), 4u);
  EXPECT_EQ(histogram_bucket_of(7), 7u);
  // Octave [16, 32): sub-bucket width 4.
  EXPECT_EQ(histogram_bucket_of(16), 12u);
  EXPECT_EQ(histogram_bucket_of(19), 12u);
  EXPECT_EQ(histogram_bucket_of(20), 13u);
  EXPECT_EQ(histogram_bucket_of(~std::uint64_t{0}), kHistogramBuckets - 1);
  EXPECT_EQ(histogram_bucket_upper(0), 1u);
  EXPECT_EQ(histogram_bucket_upper(2), 3u);
  EXPECT_EQ(histogram_bucket_upper(12), 20u);

  std::vector<std::uint64_t> buckets(kHistogramBuckets, 0);
  buckets[1] = 50;   // value 1
  buckets[12] = 50;  // values in [16,20)
  EXPECT_EQ(histogram_quantile_upper(buckets, 0.25), 2u);
  EXPECT_EQ(histogram_quantile_upper(buckets, 0.99), 20u);
  EXPECT_EQ(histogram_quantile_upper({}, 0.5), 0u);
}

TEST(HistogramGeometry, LogLinearBoundaries) {
  // Each bucket's exclusive upper bound is the next bucket's first value,
  // buckets tile the range with no gaps or overlaps, and the quantile
  // overestimate is bounded by one sub-bucket width (25%).
  for (std::size_t b = 0; b + 1 < kHistogramBuckets; ++b) {
    const std::uint64_t upper = histogram_bucket_upper(b);
    EXPECT_EQ(histogram_bucket_of(upper), b + 1) << "bucket " << b;
    EXPECT_EQ(histogram_bucket_of(upper - 1), b) << "bucket " << b;
    EXPECT_LT(histogram_bucket_upper(b), histogram_bucket_upper(b + 1));
  }
  // Sub-bucket width never exceeds 25% of the bucket's lower bound (for
  // values past the unit buckets).
  for (std::size_t b = 5; b + 1 < kHistogramBuckets; ++b) {
    const std::uint64_t lo = histogram_bucket_upper(b - 1);
    const std::uint64_t width = histogram_bucket_upper(b) - lo;
    EXPECT_LE(width * 4, lo + width) << "bucket " << b;
  }
  // The top bucket saturates: everything past ~2^48 lands in it.
  EXPECT_EQ(histogram_bucket_upper(kHistogramBuckets - 1),
            std::uint64_t{1} << 48);
  EXPECT_EQ(histogram_bucket_of(std::uint64_t{1} << 60),
            kHistogramBuckets - 1);
}

// ---------------------------------------------------------------------------
// Tracing.  These run only with spans compiled in; the same binary built
// in the tier1.sh build-notel tree skips them (and test_telemetry_off.cpp
// pins the OFF-mode guarantees).

class TracingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!kSpansEnabled) GTEST_SKIP() << "built with SOFTCELL_TELEMETRY=OFF";
    Tracer::global().disarm();
    Tracer::global().reset();
  }
  void TearDown() override {
    Tracer::global().disarm();
    Tracer::global().reset();
  }
};

TEST_F(TracingTest, DisarmedSpansRecordNothing) {
  for (int i = 0; i < 100; ++i) {
    SC_TRACE_SPAN_ARG("test.disarmed", i);
    SC_TRACE_EVENT("test.disarmed_event", i);
  }
  EXPECT_TRUE(Tracer::global().flight().empty());
  EXPECT_EQ(Tracer::global().dropped(), 0u);
}

TEST_F(TracingTest, ArmedSpansLandInFlightRecorderWithTraceIds) {
  Tracer& tracer = Tracer::global();
  tracer.arm();
  const std::uint64_t id = new_trace_id();
  {
    TraceScope scope(id);
    SC_TRACE_SPAN_ARG("test.outer", 7);
    SC_TRACE_EVENT("test.inner_event", 11);
  }
  tracer.disarm();
  const auto records = tracer.flight();
  ASSERT_EQ(records.size(), 2u);
  const auto names = tracer.names();
  // flight() linearizes by start time: the span opens before the event
  // fires inside it, even though its record is pushed at destruction.
  EXPECT_EQ(names.at(records[0].name), "test.outer");
  EXPECT_EQ(records[0].kind, kRecordSpan);
  EXPECT_EQ(records[0].trace_id, id);
  EXPECT_EQ(records[0].arg, 7u);
  EXPECT_GT(records[0].dur_ns, 0u);
  EXPECT_EQ(names.at(records[1].name), "test.inner_event");
  EXPECT_EQ(records[1].kind, kRecordEvent);
  EXPECT_EQ(records[1].trace_id, id);
  EXPECT_EQ(records[1].arg, 11u);
}

TEST_F(TracingTest, TraceScopesNestAndRestore) {
  const std::uint64_t outer = new_trace_id();
  const std::uint64_t inner = new_trace_id();
  EXPECT_NE(outer, inner);
  EXPECT_EQ(current_trace_id(), 0u);
  {
    TraceScope a(outer);
    EXPECT_EQ(current_trace_id(), outer);
    {
      TraceScope b(inner);
      EXPECT_EQ(current_trace_id(), inner);
    }
    EXPECT_EQ(current_trace_id(), outer);
  }
  EXPECT_EQ(current_trace_id(), 0u);
}

TEST_F(TracingTest, RingOverflowDropsAndCounts) {
  Tracer& tracer = Tracer::global();
  tracer.arm();
  const std::size_t pushes = Tracer::kRingCapacity + 500;
  for (std::size_t i = 0; i < pushes; ++i) {
    SC_TRACE_EVENT("test.flood", i);
  }
  tracer.disarm();
  EXPECT_EQ(tracer.dropped(), pushes - Tracer::kRingCapacity);
  EXPECT_EQ(tracer.flight().size(), Tracer::kRingCapacity);
}

TEST_F(TracingTest, FlightRecorderKeepsMostRecentAcrossDrains) {
  Tracer& tracer = Tracer::global();
  tracer.arm();
  // Fill in ring-sized batches with a drain between each so the flight
  // recorder (kFlightCapacity) wraps and keeps only the newest records.
  const std::size_t batches =
      Tracer::kFlightCapacity / Tracer::kRingCapacity + 2;
  std::size_t pushed = 0;
  for (std::size_t b = 0; b < batches; ++b) {
    for (std::size_t i = 0; i < Tracer::kRingCapacity; ++i) {
      SC_TRACE_EVENT("test.wrap", pushed);
      ++pushed;
    }
    tracer.drain();
  }
  tracer.disarm();
  const auto records = tracer.flight();
  ASSERT_EQ(records.size(), Tracer::kFlightCapacity);
  EXPECT_EQ(tracer.dropped(), 0u);
  // Oldest-first linearization: the last record is the newest push.
  EXPECT_EQ(records.back().arg, pushed - 1);
  EXPECT_EQ(records.front().arg, pushed - Tracer::kFlightCapacity);
}

TEST_F(TracingTest, RecordsFromManyThreadsCarryDistinctTids) {
  Tracer& tracer = Tracer::global();
  tracer.arm();
  std::vector<std::thread> threads;
  for (int t = 0; t < kWriters; ++t) {
    threads.emplace_back([t] {
      TraceScope scope(static_cast<std::uint64_t>(t) + 1);
      for (int i = 0; i < 100; ++i) {
        SC_TRACE_EVENT("test.mt", i);
      }
    });
  }
  for (auto& t : threads) t.join();
  tracer.disarm();
  const auto records = tracer.flight();
  EXPECT_EQ(records.size(), static_cast<std::size_t>(kWriters) * 100);
  std::vector<bool> tid_seen(256, false);
  std::vector<bool> id_seen(kWriters + 2, false);
  for (const TraceRecord& r : records) {
    tid_seen[r.tid] = true;
    ASSERT_GE(r.trace_id, 1u);
    ASSERT_LE(r.trace_id, static_cast<std::uint64_t>(kWriters));
    id_seen[r.trace_id] = true;
  }
  int tids = 0;
  for (const bool seen : tid_seen) tids += seen;
  EXPECT_EQ(tids, kWriters);
  for (int t = 1; t <= kWriters; ++t) EXPECT_TRUE(id_seen[t]);
}

TEST_F(TracingTest, ChromeTraceJsonIsWellFormed) {
  Tracer& tracer = Tracer::global();
  tracer.arm();
  {
    TraceScope scope(new_trace_id());
    SC_TRACE_SPAN_ARG("test.export_span", 5);
    SC_TRACE_EVENT("test.export_event", 6);
  }
  tracer.disarm();
  const auto records = tracer.flight();
  const std::string json =
      chrome_trace_json(records, tracer.names(), tracer.dropped());
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"test.export_span\""), std::string::npos);
  EXPECT_NE(json.find("\"test.export_event\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  // Balanced braces/brackets outside strings => structurally sound JSON.
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  for (const char ch : json) {
    if (escaped) {
      escaped = false;
    } else if (ch == '\\') {
      escaped = in_string;
    } else if (ch == '"') {
      in_string = !in_string;
    } else if (!in_string && (ch == '{' || ch == '[')) {
      ++depth;
    } else if (!in_string && (ch == '}' || ch == ']')) {
      ASSERT_GT(depth, 0);
      --depth;
    }
  }
  EXPECT_FALSE(in_string);
  EXPECT_EQ(depth, 0);
}

TEST(BenchReport, RendersSharedSchema) {
  BenchReport report("unit_test");
  report.meta_u64("threads", 4);
  report.meta_bool("smoke", true);
  auto row = report.row();
  row.begin_object().u64("workers", 2).num("per_s", 123.5, 1).end_object();
  report.add_row(std::move(row));
  Snapshot snap;
  snap.counter("unit.count", 9);
  snap.finish();
  report.metrics(snap);
  const std::string json = report.render();
  EXPECT_NE(json.find("\"schema\":\"softcell-bench-1\""), std::string::npos);
  EXPECT_NE(json.find("\"bench\":\"unit_test\""), std::string::npos);
  EXPECT_NE(json.find("\"threads\":4"), std::string::npos);
  EXPECT_NE(json.find("\"workers\":2"), std::string::npos);
  EXPECT_NE(json.find("\"unit.count\":9"), std::string::npos);
}

}  // namespace
}  // namespace softcell::telemetry
