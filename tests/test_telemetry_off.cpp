// Compiled with SOFTCELL_TELEMETRY_DISABLED=1 (see tests/CMakeLists.txt)
// inside the regular tracing-enabled build tree: proves an OFF translation
// unit is a true no-op AND links cleanly against the ON-built library (the
// tele_on/tele_off inline namespaces keep the two APIs ODR-distinct, and
// TraceRecord stays unconditional so the exporters keep one signature).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "telemetry/export.hpp"
#include "telemetry/trace.hpp"

namespace softcell::telemetry {
namespace {

static_assert(!kSpansEnabled,
              "this test must be built with SOFTCELL_TELEMETRY_DISABLED");
// The stubs carry no state: a Span is an empty object the optimizer can
// erase entirely, and trace ids are compile-time zero.
static_assert(sizeof(Span) == 1, "disabled Span must hold no state");
static_assert(new_trace_id() == 0, "disabled trace ids are constant 0");
static_assert(current_trace_id() == 0, "disabled trace ids are constant 0");
static_assert(Tracer::kRingCapacity == 0, "no ring is ever allocated");

TEST(TelemetryOff, MacrosAreNoOpsAndAllocateNoRings) {
  Tracer& tracer = Tracer::global();
  tracer.arm();  // arming a disabled tracer is itself a no-op
  for (int i = 0; i < 1000; ++i) {
    SC_TRACE_SPAN("off.span");
    SC_TRACE_SPAN_ARG("off.span_arg", i);
    SC_TRACE_EVENT("off.event", i);
  }
  EXPECT_FALSE(tracer.armed());
  EXPECT_EQ(tracer.ring_count(), 0u);
  EXPECT_TRUE(tracer.flight().empty());
  EXPECT_TRUE(tracer.names().empty());
  EXPECT_EQ(tracer.dropped(), 0u);
}

TEST(TelemetryOff, SpanArgumentExpressionIsNotEvaluated) {
  int evaluations = 0;
  const auto count = [&evaluations] { return ++evaluations; };
  SC_TRACE_SPAN_ARG("off.lazy", count());
  SC_TRACE_EVENT("off.lazy_event", count());
  static_cast<void>(count);  // only "used" when the macros expand to spans
  EXPECT_EQ(evaluations, 0);
}

TEST(TelemetryOff, ExportersStillLinkAgainstOnBuiltLibrary) {
  // chrome_trace_json is compiled into the (tracing-enabled) library;
  // TraceRecord is unconditional, so an OFF TU can still feed it.
  TraceRecord rec;
  rec.trace_id = 1;
  rec.start_ns = 2000;
  rec.dur_ns = 500;
  rec.name = 0;
  rec.kind = kRecordSpan;
  const std::vector<std::string> names{"off.synthetic"};
  const std::string json = chrome_trace_json({&rec, 1}, names, 0);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"off.synthetic\""), std::string::npos);

  BenchReport report("off_mode");
  report.meta_bool("spans_enabled", kSpansEnabled);
  const std::string doc = report.render();
  EXPECT_NE(doc.find("\"spans_enabled\":false"), std::string::npos);
}

}  // namespace
}  // namespace softcell::telemetry
