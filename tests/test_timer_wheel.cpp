// Hierarchical timer wheel: exact delivery at tick boundaries (including
// the cascade boundaries between levels), generation-checked cancellation,
// far-future deadlines via the overflow list, and the determinism contract
// -- (deadline, schedule-sequence) order, the same ordering the EventQueue
// heap has always provided (pinned differentially at the bottom).
#include "sim/timer_wheel.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "sim/event_queue.hpp"
#include "util/rng.hpp"

namespace softcell {
namespace {

using Wheel = sim::TimerWheel<std::uint64_t>;

std::vector<std::pair<std::uint64_t, std::uint64_t>> drain(Wheel& w,
                                                           std::uint64_t to) {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> fired;
  w.advance(to, [&](std::uint64_t deadline, std::uint64_t payload) {
    fired.emplace_back(deadline, payload);
  });
  return fired;
}

TEST(TimerWheel, FiresAtExactTicks) {
  Wheel w;
  w.schedule(5, 50);
  w.schedule(3, 30);
  w.schedule(9, 90);
  EXPECT_EQ(w.pending(), 3u);
  EXPECT_EQ(w.next_pending_tick(), 3u);

  auto fired = drain(w, 4);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], std::make_pair(std::uint64_t{3}, std::uint64_t{30}));
  EXPECT_EQ(w.now(), 4u);

  fired = drain(w, 100);
  ASSERT_EQ(fired.size(), 2u);
  EXPECT_EQ(fired[0].first, 5u);
  EXPECT_EQ(fired[1].first, 9u);
  EXPECT_EQ(w.pending(), 0u);
  EXPECT_EQ(w.next_pending_tick(), Wheel::kNever);
}

TEST(TimerWheel, PastDeadlinesFireOnNextAdvance) {
  Wheel w;
  drain(w, 100);
  w.schedule(7, 1);    // already past: effective deadline is now+1
  w.schedule(100, 2);  // at now: same
  auto fired = drain(w, 101);
  ASSERT_EQ(fired.size(), 2u);
  // Delivered with their *requested* deadlines, in (deadline, seq) order.
  EXPECT_EQ(fired[0], std::make_pair(std::uint64_t{7}, std::uint64_t{1}));
  EXPECT_EQ(fired[1], std::make_pair(std::uint64_t{100}, std::uint64_t{2}));
}

TEST(TimerWheel, Level0BoundaryTicks) {
  // Deadlines straddling the 256-tick level-0 window: 255 is in the level-0
  // window at schedule time, 256 and 257 sit in level 1 until the cascade
  // at tick 256 drops them down.  All must fire at exactly their tick.
  Wheel w;
  w.schedule(255, 1);
  w.schedule(256, 2);
  w.schedule(257, 3);
  w.schedule(511, 4);
  w.schedule(512, 5);

  auto fired = drain(w, 10'000);
  ASSERT_EQ(fired.size(), 5u);
  EXPECT_EQ(fired[0].first, 255u);
  EXPECT_EQ(fired[1].first, 256u);
  EXPECT_EQ(fired[2].first, 257u);
  EXPECT_EQ(fired[3].first, 511u);
  EXPECT_EQ(fired[4].first, 512u);
}

TEST(TimerWheel, HigherLevelCascadeBoundaries) {
  // Level-2 window boundary (2^16) and level-3 window boundary (2^24):
  // entries cascade down exactly once and fire on time.
  Wheel w;
  const std::uint64_t l2 = std::uint64_t{1} << 16;
  const std::uint64_t l3 = std::uint64_t{1} << 24;
  w.schedule(l2 - 1, 1);
  w.schedule(l2, 2);
  w.schedule(l2 + 1, 3);
  w.schedule(l3, 4);
  w.schedule(l3 + 77, 5);

  auto fired = drain(w, l3 + 100);
  ASSERT_EQ(fired.size(), 5u);
  EXPECT_EQ(fired[0].first, l2 - 1);
  EXPECT_EQ(fired[1].first, l2);
  EXPECT_EQ(fired[2].first, l2 + 1);
  EXPECT_EQ(fired[3].first, l3);
  EXPECT_EQ(fired[4].first, l3 + 77);
}

TEST(TimerWheel, CancelDisarmsAndStaleIdsAreSafe) {
  Wheel w;
  const auto a = w.schedule(10, 1);
  const auto b = w.schedule(20, 2);
  EXPECT_TRUE(w.cancel(a));
  EXPECT_FALSE(w.cancel(a));  // double cancel: no-op
  EXPECT_EQ(w.pending(), 1u);

  auto fired = drain(w, 100);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].second, 2u);
  EXPECT_FALSE(w.cancel(b));         // already fired
  EXPECT_FALSE(w.cancel(Wheel::TimerId{}));  // null id
}

TEST(TimerWheel, CancelDuringFireSuppressesSameTickTimer) {
  sim::TimerWheel<int> w;
  sim::TimerWheel<int>::TimerId second{};
  int fired_payload = 0;
  int count = 0;
  w.schedule(5, 1);
  second = w.schedule(5, 2);
  w.advance(10, [&](std::uint64_t, int p) {
    ++count;
    fired_payload = p;
    w.cancel(second);  // sink cancels a timer due this very tick
  });
  EXPECT_EQ(count, 1);
  EXPECT_EQ(fired_payload, 1);
  EXPECT_EQ(w.pending(), 0u);
}

TEST(TimerWheel, SinkMayScheduleFutureTimers) {
  Wheel w;
  w.schedule(1, 1);
  std::vector<std::uint64_t> deadlines;
  w.advance(10, [&](std::uint64_t d, std::uint64_t payload) {
    deadlines.push_back(d);
    if (payload < 3) w.schedule(d + 2, payload + 1);
  });
  EXPECT_EQ(deadlines, (std::vector<std::uint64_t>{1, 3, 5}));
}

TEST(TimerWheel, FarFutureOverflowFiresExactly) {
  const std::uint64_t span = std::uint64_t{1} << 32;
  Wheel w;
  w.schedule(span + 123, 7);      // beyond the 4-level span: overflow list
  w.schedule(2 * span + 456, 8);  // two wraps out
  EXPECT_EQ(w.pending(), 2u);
  // Nothing in the wheel proper: the next examination point is the wrap.
  EXPECT_EQ(w.next_pending_tick(), span);

  auto fired = drain(w, span + 200);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], std::make_pair(span + 123, std::uint64_t{7}));

  fired = drain(w, 2 * span + 1000);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], std::make_pair(2 * span + 456, std::uint64_t{8}));
  EXPECT_EQ(w.pending(), 0u);
}

TEST(TimerWheel, CancelledOverflowTimerNeverFires) {
  const std::uint64_t span = std::uint64_t{1} << 32;
  Wheel w;
  const auto id = w.schedule(span + 5, 1);
  EXPECT_TRUE(w.cancel(id));
  EXPECT_EQ(drain(w, span + 100).size(), 0u);
  EXPECT_EQ(w.pending(), 0u);
}

TEST(TimerWheel, AdvanceSkipsEmptyStretchesCheaply) {
  // A timer parked millions of ticks out must not cost per-tick work:
  // advance() jumps via next_pending_tick(), so this completes instantly.
  Wheel w;
  w.schedule(50'000'000, 1);
  auto fired = drain(w, 60'000'000);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].first, 50'000'000u);
}

// --- determinism: wheel order == event-heap order ---------------------------
// The wheel promises (deadline, schedule-sequence) delivery, the exact
// contract of the EventQueue heap.  Replay a randomized schedule through
// both and require identical firing sequences.

TEST(TimerWheel, DeterministicAndMatchesHeapOrdering) {
  Rng rng(20260808);
  struct Sched {
    std::uint64_t deadline;
    std::uint64_t payload;
  };
  std::vector<Sched> plan;
  for (std::uint64_t i = 0; i < 2000; ++i)
    plan.push_back(Sched{1 + rng.next_below(5000), i});

  // Reference: a (deadline, seq) stable sort, i.e. heap semantics.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> expect;
  for (const Sched& s : plan) expect.emplace_back(s.deadline, s.payload);
  std::stable_sort(expect.begin(), expect.end(),
                   [](const auto& a, const auto& b) {
                     return a.first < b.first;
                   });

  for (int run = 0; run < 2; ++run) {  // twice: determinism across runs
    Wheel w;
    for (const Sched& s : plan) w.schedule(s.deadline, s.payload);
    const auto fired = drain(w, 10'000);
    ASSERT_EQ(fired, expect) << "run " << run;
  }
}

TEST(EventQueueTimers, MergedClockHeapWinsTies) {
  // A heap event and a wheel timer at the same instant: the heap event runs
  // first (pre-wheel behavior of pure workload runs is bit-identical).
  EventQueue q;
  std::vector<int> order;
  q.timer_at(0.5, [&] { order.push_back(2); });
  q.at(0.5, [&] { order.push_back(1); });
  q.at(0.25, [&] { order.push_back(0); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(EventQueueTimers, CancelAndRunUntil) {
  EventQueue q;
  int fired = 0;
  const auto a = q.timer_after(0.010, [&] { ++fired; });
  q.timer_after(0.020, [&] { ++fired; });
  EXPECT_EQ(q.timers_pending(), 2u);
  EXPECT_TRUE(q.cancel_timer(a));
  EXPECT_FALSE(q.cancel_timer(a));

  q.run_until(0.015);
  EXPECT_EQ(fired, 0);  // only the cancelled timer was due
  q.run_until(0.050);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(q.timers_pending(), 0u);
  EXPECT_DOUBLE_EQ(q.now(), 0.050);
}

TEST(EventQueueTimers, TimerChainsReschedule) {
  // An idle-timer pattern: each firing re-arms itself until a budget runs
  // out; the merged clock must keep heap events interleaved correctly.
  EventQueue q;
  std::vector<double> timer_times, event_times;
  std::function<void()> rearm = [&] {
    timer_times.push_back(q.now());
    if (timer_times.size() < 5) q.timer_after(0.010, rearm);
  };
  q.timer_after(0.010, rearm);
  q.at(0.025, [&] { event_times.push_back(q.now()); });
  q.run();
  ASSERT_EQ(timer_times.size(), 5u);
  EXPECT_DOUBLE_EQ(timer_times[0], 0.010);
  EXPECT_DOUBLE_EQ(timer_times[4], 0.050);
  ASSERT_EQ(event_times.size(), 1u);
  EXPECT_DOUBLE_EQ(event_times[0], 0.025);
}

}  // namespace
}  // namespace softcell
