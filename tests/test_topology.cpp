#include "topo/cellular.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

namespace softcell {
namespace {

TEST(Graph, BasicsAndChecks) {
  Graph g;
  const auto a = g.add_node(NodeKind::kCoreSwitch);
  const auto b = g.add_node(NodeKind::kAggSwitch);
  g.add_link(a, b);
  EXPECT_EQ(g.node_count(), 2u);
  EXPECT_EQ(g.link_count(), 1u);
  EXPECT_EQ(g.neighbors(a).size(), 1u);
  EXPECT_EQ(g.neighbors(a)[0], b);
  EXPECT_THROW(g.add_link(a, a), std::invalid_argument);
  EXPECT_THROW((void)g.node(NodeId(5)), std::out_of_range);
}

TEST(CellularTopology, BaseStationCountFormula) {
  // 10 k^3 / 4 base stations (paper section 6.3).
  for (std::uint32_t k : {2u, 4u, 8u}) {
    const CellularTopology topo({.k = k});
    EXPECT_EQ(topo.num_base_stations(), 10 * k * k * k / 4) << "k=" << k;
  }
}

TEST(CellularTopology, PaperSizesMatch) {
  EXPECT_EQ(CellularTopology({.k = 8}).num_base_stations(), 1280u);
  // k=20 would be 20000; construction is heavier, checked in benches.
}

TEST(CellularTopology, RejectsOddK) {
  EXPECT_THROW(CellularTopology({.k = 3}), std::invalid_argument);
  EXPECT_THROW(CellularTopology({.k = 0}), std::invalid_argument);
}

TEST(CellularTopology, LayerCounts) {
  const std::uint32_t k = 4;
  const CellularTopology topo({.k = k});
  EXPECT_EQ(topo.agg_switches().size(), static_cast<std::size_t>(k * k));
  EXPECT_EQ(topo.core_switches().size(), static_cast<std::size_t>(k * k));
  EXPECT_EQ(topo.num_middlebox_types(), k);
  // k types x (k pods + 2 core instances).
  EXPECT_EQ(topo.middleboxes().size(), static_cast<std::size_t>(k * (k + 2)));
}

TEST(CellularTopology, MiddleboxPlacement) {
  const std::uint32_t k = 4;
  const CellularTopology topo({.k = k, .seed = 9});
  for (std::uint32_t t = 0; t < k; ++t) {
    for (std::uint32_t p = 0; p < k; ++p) {
      const auto& inst = topo.pod_instance(t, p);
      EXPECT_EQ(inst.type, t);
      EXPECT_EQ(inst.pod, p);
      EXPECT_EQ(topo.graph().kind(inst.host_switch), NodeKind::kAggSwitch);
      EXPECT_EQ(topo.graph().node(inst.host_switch).aux, p);
    }
    for (std::uint32_t w = 0; w < 2; ++w) {
      const auto& inst = topo.core_instance(t, w);
      EXPECT_EQ(inst.pod, MiddleboxInstance::kNoPod);
      EXPECT_EQ(topo.graph().kind(inst.host_switch), NodeKind::kCoreSwitch);
    }
  }
  EXPECT_THROW((void)topo.core_instance(0, 2), std::out_of_range);
}

TEST(CellularTopology, RingClustersCloseThroughAggSwitch) {
  const std::uint32_t k = 2;
  const CellularTopology topo({.k = k, .cluster_size = 5});
  const auto& g = topo.graph();
  // Every access switch has exactly 2 ring neighbors (line neighbors or the
  // aggregation switch at the ends).
  for (std::uint32_t b = 0; b < topo.num_base_stations(); ++b) {
    const auto nbrs = g.neighbors(topo.access_switch(b));
    EXPECT_EQ(nbrs.size(), 2u) << "bs " << b;
  }
}

TEST(CellularTopology, BsPrefixesDisjointAndDense) {
  const CellularTopology topo({.k = 4});
  std::unordered_set<Ipv4Addr> seen;
  for (std::uint32_t b = 0; b < topo.num_base_stations(); ++b) {
    const Prefix p = topo.bs_prefix(b);
    EXPECT_TRUE(seen.insert(p.addr()).second);
    EXPECT_TRUE(topo.plan().carrier().contains(p.addr()));
  }
}

TEST(CellularTopology, PodOfBsConsistentWithAttachment) {
  const std::uint32_t k = 4;
  const CellularTopology topo({.k = k});
  // Base stations are numbered pod-major, k^2/4 clusters of 10 per pod.
  const std::uint32_t per_pod = topo.num_base_stations() / k;
  for (std::uint32_t b = 0; b < topo.num_base_stations(); ++b)
    EXPECT_EQ(topo.pod_of_bs(b), b / per_pod);
}

TEST(CellularTopology, GatewayConnectsCoreAndInternet) {
  const CellularTopology topo({.k = 4});
  const auto& g = topo.graph();
  EXPECT_EQ(g.kind(topo.gateway()), NodeKind::kGatewaySwitch);
  EXPECT_EQ(g.kind(topo.internet()), NodeKind::kInternet);
  // gateway: k^2 core switches + internet
  EXPECT_EQ(g.neighbors(topo.gateway()).size(), 16u + 1u);
}

TEST(CellularTopology, DeterministicForSeed) {
  const CellularTopology a({.k = 4, .seed = 5});
  const CellularTopology b({.k = 4, .seed = 5});
  ASSERT_EQ(a.middleboxes().size(), b.middleboxes().size());
  for (std::size_t i = 0; i < a.middleboxes().size(); ++i)
    EXPECT_EQ(a.middleboxes()[i].host_switch, b.middleboxes()[i].host_switch);
}

TEST(CellularTopology, CoreStripingVariants) {
  // Both stripings produce the same layer counts and k^3/4 pod-to-core
  // links; the uniform variant touches every core switch.
  for (const CoreStripe s : {CoreStripe::kBlocked, CoreStripe::kUniform}) {
    const CellularTopology topo({.k = 8, .core_stripe = s});
    std::size_t uplinks = 0;
    std::unordered_set<NodeId> cores_linked;
    for (const NodeId up : topo.agg_switches()) {
      for (const NodeId n : topo.graph().neighbors(up)) {
        if (topo.graph().kind(n) == NodeKind::kCoreSwitch) {
          ++uplinks;
          cores_linked.insert(n);
        }
      }
    }
    EXPECT_EQ(uplinks, 8u * 8u * 8u / 4u);
    if (s == CoreStripe::kUniform) {
      EXPECT_EQ(cores_linked.size(), topo.core_switches().size());
    }
  }
}

TEST(CellularTopology, UeBitsDerivedFromScale) {
  const CellularTopology small({.k = 2});
  EXPECT_GE(small.plan().max_base_stations(), small.num_base_stations());
  const CellularTopology big({.k = 8});
  EXPECT_GE(big.plan().max_base_stations(), big.num_base_stations());
  EXPECT_EQ(big.plan().bs_bits() + big.plan().ue_bits(), 24);
}

}  // namespace
}  // namespace softcell
