#include "workload/lte_trace.hpp"

#include <gtest/gtest.h>

#include <map>

namespace softcell {
namespace {

TEST(LteTrace, DiurnalCurveHasUnitMeanAndPeaksEvening) {
  LteTraceGenerator gen;
  double sum = 0;
  for (int h = 0; h < 24; ++h) sum += gen.diurnal(h * 3600.0, 0.75);
  EXPECT_NEAR(sum / 24.0, 1.0, 0.01);
  EXPECT_GT(gen.diurnal(20 * 3600.0, 0.75), gen.diurnal(8 * 3600.0, 0.75));
  EXPECT_GT(gen.diurnal(20 * 3600.0, 0.75), 1.5);
  EXPECT_LT(gen.diurnal(4 * 3600.0, 0.75), 0.7);
}

// A reduced day (2 hours, fewer samples) keeps the test fast while checking
// the generator produces the right orders of magnitude; the full-day
// calibration against the paper's percentiles lives in bench_fig6_workload.
LteDayStats quick_day(std::uint64_t seed = 42) {
  LteWorkloadParams p;
  p.duration_s = 7200;
  p.seed = seed;
  LteTraceGenerator gen(p);
  return gen.day_statistics(/*per_bs_samples=*/60'000);
}

TEST(LteTrace, ArrivalRatesInPlausibleRange) {
  const auto stats = quick_day();
  // 1M UEs x 2 attaches / day ~ 23/s mean.
  EXPECT_NEAR(stats.ue_arrivals_per_s.mean(), 23.1, 12.0);
  EXPECT_GT(stats.ue_arrivals_per_s.percentile(99.9), 40.0);
  // Handoffs run hotter than arrivals by the configured ratio.
  EXPECT_GT(stats.handoffs_per_s.mean(), stats.ue_arrivals_per_s.mean());
}

TEST(LteTrace, ActiveUesPerBsScale) {
  const auto stats = quick_day();
  // ~167 active UEs per BS on average (hundreds, per the paper).
  EXPECT_GT(stats.active_ues_per_bs.mean(), 80.0);
  EXPECT_LT(stats.active_ues_per_bs.mean(), 350.0);
  EXPECT_LT(stats.active_ues_per_bs.percentile(99.999), 900.0);
}

TEST(LteTrace, BearerArrivalsPerBsScale) {
  const auto stats = quick_day();
  EXPECT_GT(stats.bearer_arrivals_per_bs_s.mean(), 1.0);
  EXPECT_LT(stats.bearer_arrivals_per_bs_s.mean(), 15.0);
  EXPECT_LT(stats.bearer_arrivals_per_bs_s.percentile(99.999), 80.0);
}

TEST(LteTrace, DeterministicForSeed) {
  const auto a = quick_day(7);
  const auto b = quick_day(7);
  const auto c = quick_day(8);
  EXPECT_DOUBLE_EQ(a.ue_arrivals_per_s.mean(), b.ue_arrivals_per_s.mean());
  EXPECT_NE(a.ue_arrivals_per_s.mean(), c.ue_arrivals_per_s.mean());
}

TEST(LteTrace, EventStreamIsWellFormed) {
  LteTraceGenerator gen;
  LteTraceGenerator::ScaledScenario sc;
  sc.num_ues = 20;
  sc.num_bs = 6;
  sc.duration_s = 100.0;

  std::map<std::uint32_t, double> first_seen;   // ue -> arrival time
  std::map<std::uint32_t, std::uint32_t> at_bs; // ue -> current bs
  std::size_t flows = 0, moves = 0;
  gen.generate_events(sc, [&](const LteTraceGenerator::Event& e) {
    EXPECT_GE(e.t, 0.0);
    EXPECT_LT(e.bs, sc.num_bs);
    EXPECT_LT(e.ue, sc.num_ues);
    switch (e.kind) {
      case LteTraceGenerator::Event::Kind::kUeArrival:
        EXPECT_FALSE(first_seen.contains(e.ue));
        first_seen[e.ue] = e.t;
        at_bs[e.ue] = e.bs;
        break;
      case LteTraceGenerator::Event::Kind::kHandoff:
        ASSERT_TRUE(first_seen.contains(e.ue));
        EXPECT_GE(e.t, first_seen[e.ue]);
        EXPECT_NE(at_bs[e.ue], e.bs);  // moves go to a *different* bs
        at_bs[e.ue] = e.bs;
        ++moves;
        break;
      case LteTraceGenerator::Event::Kind::kFlowStart:
        ASSERT_TRUE(first_seen.contains(e.ue));
        EXPECT_GE(e.t, first_seen[e.ue]);
        ++flows;
        break;
    }
  });
  EXPECT_EQ(first_seen.size(), sc.num_ues);
  EXPECT_GT(flows, sc.num_ues);  // flow rate x duration >> 1 per UE
  EXPECT_GT(moves, 0u);
}

TEST(LteTrace, PopularityIsMeanNormalized) {
  // Indirect check: doubling popularity sigma must not shift the mean of
  // active UEs per BS, only widen the tail.
  LteWorkloadParams narrow;
  narrow.duration_s = 3600;
  narrow.bs_popularity_sigma = 0.1;
  LteWorkloadParams wide = narrow;
  wide.bs_popularity_sigma = 0.6;
  auto sn = LteTraceGenerator(narrow).day_statistics(40'000);
  auto sw = LteTraceGenerator(wide).day_statistics(40'000);
  EXPECT_NEAR(sn.active_ues_per_bs.mean(), sw.active_ues_per_bs.mean(),
              sn.active_ues_per_bs.mean() * 0.2);
  EXPECT_GT(sw.active_ues_per_bs.percentile(99.9),
            sn.active_ues_per_bs.percentile(99.9));
}

}  // namespace
}  // namespace softcell
