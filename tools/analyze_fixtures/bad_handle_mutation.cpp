// softcell-analyze fixture: MUST trigger handle-across-mutation (twice).
//
// Self-contained stand-ins with the real spellings: mem::Slab recycles a
// slot on erase (generation bump), FlatMap moves its dense array on
// rehash -- in both cases a previously derived pointer/reference is
// dangling after the mutation.

namespace softcell {
namespace mem {

struct Handle {
  unsigned index = 0;
  unsigned generation = 0;
};

template <typename T>
struct Slab {
  T* get(Handle h) {
    (void)h;
    return &value_;
  }
  bool erase(Handle h) {
    (void)h;
    return true;
  }
  void clear() {}
  T value_{};
};

}  // namespace mem

template <typename K, typename V>
struct FlatMap {
  V* find(const K& key) {
    (void)key;
    return &value_;
  }
  V& at(const K& key) {
    (void)key;
    return value_;
  }
  bool try_emplace(const K& key, const V& v) {
    (void)key;
    (void)v;
    return true;
  }
  void erase(const K& key) { (void)key; }
  V value_{};
};

struct Rec {
  unsigned value = 0;
};

unsigned bad_use_after_erase(mem::Slab<Rec>& slab, mem::Handle h,
                             mem::Handle victim) {
  Rec* rec = slab.get(h);
  slab.erase(victim);  // may recycle the slot 'rec' points into
  return rec->value;   // BAD: no generation recheck after the mutation
}

unsigned bad_ref_across_insert(FlatMap<unsigned, Rec>& map, unsigned key) {
  Rec& rec = map.at(key);
  map.try_emplace(key + 1, Rec{});  // rehash moves the dense array
  return rec.value;                 // BAD: reference not re-derived
}

}  // namespace softcell
