// softcell-analyze fixture: MUST trigger lock-order-cycle.
//
// Two classes acquire each other's sc:: mutexes in opposite orders
// through method calls: Leader::poke holds Leader::mu_ while acquiring
// Follower::mu_, and Follower::poke does the reverse.  Neither edge is
// in the (empty, for this fixture) declared ordering.

namespace softcell {
namespace sc {

struct Mutex {};

struct LockGuard {
  explicit LockGuard(Mutex& mu) { (void)mu; }
};

}  // namespace sc

struct Follower;

struct Leader {
  sc::Mutex mu_;
  Follower* peer = nullptr;
  void poke();
  void touched();
};

struct Follower {
  sc::Mutex mu_;
  Leader* peer = nullptr;
  void poke();
  void touched();
};

void Leader::poke() {
  sc::LockGuard lock(mu_);  // Leader::mu_ held...
  peer->touched();          // ...while Follower::mu_ is acquired
}

void Leader::touched() { sc::LockGuard lock(mu_); }

void Follower::poke() {
  sc::LockGuard lock(mu_);  // Follower::mu_ held...
  peer->touched();          // ...while Leader::mu_ is acquired -> cycle
}

void Follower::touched() { sc::LockGuard lock(mu_); }

}  // namespace softcell
