// softcell-analyze fixture: MUST trigger rvalue-snapshot-deref (twice).
//
// Reproduces the literal PR 8 warm-hit use-after-free (DESIGN.md §12.4):
// the shared_ptr<PathView> snapshot is a *temporary*, so the view -- and
// the PolicyTag the returned pointer aims into -- can retire
// mid-statement once a racing commit republishes.
#include <memory>

namespace softcell {

struct PolicyTag {
  unsigned value = 0;
};

struct PathView {
  PolicyTag tag;
  const PolicyTag* path(unsigned clause, unsigned bs) const {
    (void)clause;
    (void)bs;
    return &tag;
  }
};

struct Committer {
  std::shared_ptr<const PathView> view_;
  std::shared_ptr<const PathView> view() const { return view_; }
};

unsigned warm_hit(const Committer& committer, unsigned clause, unsigned bs) {
  if (const PolicyTag* tag = committer.view()->path(clause, bs))  // BAD
    return tag->value;
  return 0;
}

const PathView* escape(const Committer& committer) {
  return committer.view().get();  // BAD: raw pointer outlives the temporary
}

}  // namespace softcell
