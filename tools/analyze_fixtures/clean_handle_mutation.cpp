// softcell-analyze fixture: MUST be clean for handle-across-mutation.
//
// The two sanctioned shapes: re-derive the pointer after the mutation
// (the generation recheck), or finish every use before mutating.

namespace softcell {
namespace mem {

struct Handle {
  unsigned index = 0;
  unsigned generation = 0;
};

template <typename T>
struct Slab {
  T* get(Handle h) {
    (void)h;
    return &value_;
  }
  bool erase(Handle h) {
    (void)h;
    return true;
  }
  void clear() {}
  T value_{};
};

}  // namespace mem

template <typename K, typename V>
struct FlatMap {
  V* find(const K& key) {
    (void)key;
    return &value_;
  }
  V& at(const K& key) {
    (void)key;
    return value_;
  }
  void erase(const K& key) { (void)key; }
  V value_{};
};

struct Rec {
  unsigned value = 0;
};

unsigned clean_rederive(mem::Slab<Rec>& slab, mem::Handle h,
                        mem::Handle victim) {
  Rec* rec = slab.get(h);
  unsigned first = rec->value;
  slab.erase(victim);
  rec = slab.get(h);  // OK: re-derived (generation recheck) after erase
  return first + rec->value;
}

unsigned clean_read_before(FlatMap<unsigned, Rec>& map, unsigned key) {
  Rec& rec = map.at(key);
  unsigned v = rec.value;  // every use precedes the mutation
  map.erase(key);
  return v;
}

}  // namespace softcell
