// softcell-analyze fixture: MUST be clean for lock-order-cycle.
//
// The real CoreCommitter choreography: submit() drops the stage lock
// (UniqueLock::unlock) before calling into the core, so holding
// Core::mu_ while calling back into Committer::enqueue is the ONLY
// observed direction -- no cycle.  An analyzer that does not model the
// mid-scope unlock would see Committer::mu_ -> Core::mu_ too and report
// a false cycle; this fixture pins the unlock modelling.

namespace softcell {
namespace sc {

struct Mutex {};

struct LockGuard {
  explicit LockGuard(Mutex& mu) { (void)mu; }
};

struct UniqueLock {
  explicit UniqueLock(Mutex& mu) { (void)mu; }
  void lock() {}
  void unlock() {}
};

}  // namespace sc

struct Core;

struct Committer {
  sc::Mutex mu_;
  Core* core = nullptr;
  void submit();
  void enqueue();
};

struct Core {
  sc::Mutex mu_;
  Committer* committer = nullptr;
  void apply();
  void notify();
};

void Committer::submit() {
  sc::UniqueLock lock(mu_);
  // Drop the stage lock before calling into the core (flat-combining
  // leader hand-off): no Committer::mu_ -> Core::mu_ edge exists.
  lock.unlock();
  core->apply();
  lock.lock();
}

void Committer::enqueue() { sc::LockGuard lock(mu_); }

void Core::apply() { sc::LockGuard lock(mu_); }

void Core::notify() {
  sc::LockGuard lock(mu_);
  committer->enqueue();  // Core::mu_ -> Committer::mu_, one direction only
}

}  // namespace softcell
