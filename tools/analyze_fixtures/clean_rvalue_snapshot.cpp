// softcell-analyze fixture: MUST be clean for rvalue-snapshot-deref.
//
// The three sanctioned shapes: pin the snapshot in a named local before
// dereferencing (the PR 8 fix), return it by value, or pass it as a call
// argument (the full-expression keeps the control block alive).
#include <memory>

namespace softcell {

struct PolicyTag {
  unsigned value = 0;
};

struct PathView {
  PolicyTag tag;
  const PolicyTag* path(unsigned clause, unsigned bs) const {
    (void)clause;
    (void)bs;
    return &tag;
  }
};

struct Committer {
  std::shared_ptr<const PathView> view_;
  std::shared_ptr<const PathView> view() const { return view_; }
};

unsigned warm_hit_pinned(const Committer& committer, unsigned clause,
                         unsigned bs) {
  const auto view = committer.view();  // pinned: outlives the dereference
  if (const PolicyTag* tag = view->path(clause, bs)) return tag->value;
  return 0;
}

std::shared_ptr<const PathView> forward(const Committer& committer) {
  return committer.view();  // OK: ownership transfers to the caller
}

void consume(std::shared_ptr<const PathView> view);

void pass_through(const Committer& committer) {
  consume(committer.view());  // OK: alive for the whole full-expression
}

}  // namespace softcell
