#!/usr/bin/env python3
"""Generate clang-shaped JSON AST dumps for the analyze fixtures.

The container running tier1 may not ship clang++, but the analyzer's
fixture tests must still exercise every checker.  This generator
composes dumps in exactly the shape `clang++ -Xclang -ast-dump=json`
emits for the constructs the checkers inspect (node kinds, qualType
strings, valueCategory, referencedDecl, wrapper nesting, the
file/line carry-forward begin locations), anchored to the REAL line
numbers of the .cpp fixtures: every location is looked up by substring
in the source, so editing a fixture cannot silently desynchronize the
dumps.

When a clang++ with JSON AST support IS available, the test suite
additionally regenerates the dumps live and asserts the same verdicts,
so the two paths cross-check each other.

Usage: make_asts.py <output-dir>
"""

from __future__ import annotations

import json
import os
import sys

HERE = os.path.dirname(os.path.abspath(__file__))

# Where the fixture .cpp files live; the test suite overrides this (second
# CLI argument) to generate dumps for modified fixture copies, e.g. with
# inline sc-analyze suppression markers appended.
SRC_DIR = HERE

_next_id = [0]


def _nid():
    _next_id[0] += 1
    return f"0x{_next_id[0]:x}"


def node(kind, line=None, file=None, **kw):
    n = {"id": _nid(), "kind": kind}
    begin = {}
    if file is not None:
        begin["file"] = file
    if line is not None:
        begin["line"] = line
        begin["col"] = 1
        begin["tokLen"] = 1
    n["range"] = {"begin": begin, "end": dict(begin)}
    inner = kw.pop("inner", None)
    for key, val in kw.items():
        n[key] = val
    if inner is not None:
        n["inner"] = inner
    return n


def ty(qual):
    return {"qualType": qual}


def tu(*decls):
    return node("TranslationUnitDecl", inner=list(decls))


def compound(*stmts, line=None):
    return node("CompoundStmt", line=line, inner=list(stmts))


def func(name, line, file, body, kind="FunctionDecl", parent=None):
    kw = {"name": name, "inner": [body]}
    if parent is not None:
        kw["parentDeclContextId"] = parent
    return node(kind, line=line, file=file, **kw)


def declstmt(var_node, line=None):
    return node("DeclStmt", line=line, inner=[var_node])


def var(name, qual, init, line):
    inner = [init] if init is not None else []
    return node("VarDecl", line=line, name=name, type=ty(qual), inner=inner)


def declref(name, qual, line=None):
    return node("DeclRefExpr", line=line, type=ty(qual),
                valueCategory="lvalue",
                referencedDecl={"id": _nid(), "kind": "VarDecl",
                                "name": name})


def member(name, base, qual, line=None, arrow=False):
    return node("MemberExpr", line=line, name=name, isArrow=arrow,
                type=ty(qual), valueCategory="lvalue", inner=[base])


def this_expr(qual):
    return node("CXXThisExpr", type=ty(qual), valueCategory="prvalue")


def mcall(callee_member, args, qual, line=None, vc="prvalue"):
    return node("CXXMemberCallExpr", line=line, type=ty(qual),
                valueCategory=vc, inner=[callee_member] + list(args))


def opcall(opname, operands, qual, line=None, vc="lvalue"):
    callee = node("ImplicitCastExpr", type=ty("<function type>"),
                  inner=[node("DeclRefExpr", type=ty("<function type>"),
                              referencedDecl={"id": _nid(),
                                              "kind": "CXXMethodDecl",
                                              "name": opname})])
    return node("CXXOperatorCallExpr", line=line, type=ty(qual),
                valueCategory=vc, inner=[callee] + list(operands))


def cast(sub, qual=None):
    return node("ImplicitCastExpr",
                type=ty(qual) if qual else (sub.get("type") or ty("?")),
                inner=[sub])


def mtemp(sub):
    return node("MaterializeTemporaryExpr", type=sub.get("type", ty("?")),
                valueCategory="xvalue", inner=[sub])


def construct(sub, qual, line=None):
    return node("CXXConstructExpr", line=line, type=ty(qual),
                valueCategory="prvalue", inner=[sub])


def cleanups(sub):
    return node("ExprWithCleanups", type=sub.get("type", ty("?")),
                valueCategory=sub.get("valueCategory", "prvalue"),
                inner=[sub])


def ret(expr, line=None):
    return node("ReturnStmt", line=line, inner=[expr] if expr else [])


def ifstmt(init_var, cond, then, line=None):
    inner = []
    if init_var is not None:
        inner.append(declstmt(init_var))
    inner.extend([cond, then])
    return node("IfStmt", line=line, inner=inner)


def binop(op, lhs, rhs, qual, line=None):
    return node("BinaryOperator", line=line, opcode=op, type=ty(qual),
                inner=[lhs, rhs])


class Src:
    """Anchor lookup: line numbers come from the fixture source itself."""

    def __init__(self, filename):
        self.path = os.path.join(SRC_DIR, filename)
        with open(self.path, encoding="utf-8") as fh:
            self.lines = fh.read().splitlines()

    def line_of(self, needle, nth=1):
        seen = 0
        for i, text in enumerate(self.lines, 1):
            if needle in text:
                seen += 1
                if seen == nth:
                    return i
        raise SystemExit(
            f"make_asts: anchor '{needle}' (#{nth}) not found in {self.path}")


SHARED = "std::shared_ptr<const softcell::PathView>"
TAGP = "const softcell::PolicyTag *"
VIEWP = "const softcell::PathView *"


def view_producer(src, line):
    """committer.view() -- the snapshot-producing member call."""
    return mcall(
        member("view", cast(declref("committer", "const softcell::Committer",
                                    line=line)),
               "std::shared_ptr<const softcell::PathView> () const",
               line=line),
        [], SHARED, line=line, vc="prvalue")


def build_bad_rvalue():
    src = Src("bad_rvalue_snapshot.cpp")
    f = src.path
    l_warm = src.line_of("committer.view()->path(clause, bs)")
    l_get = src.line_of("committer.view().get()")

    warm_body = compound(
        ifstmt(
            var("tag", TAGP,
                mcall(
                    member("path",
                           opcall("operator->",
                                  [cast(mtemp(view_producer(src, l_warm)))],
                                  VIEWP, line=l_warm, vc="prvalue"),
                           "const PolicyTag *(unsigned, unsigned) const",
                           line=l_warm, arrow=True),
                    [cast(declref("clause", "unsigned int")),
                     cast(declref("bs", "unsigned int"))],
                    TAGP, line=l_warm),
                line=l_warm),
            cast(declref("tag", TAGP, line=l_warm)),
            ret(member("value", cast(declref("tag", TAGP)),
                       "unsigned int", arrow=True), line=l_warm + 1),
            line=l_warm),
        ret(node("IntegerLiteral", type=ty("unsigned int"), value="0")),
        line=src.line_of("unsigned warm_hit(") + 0)

    escape_body = compound(
        ret(mcall(
            member("get", mtemp(view_producer(src, l_get)),
                   "const PathView *() const", line=l_get),
            [], VIEWP, line=l_get, vc="prvalue"), line=l_get))

    return tu(
        func("warm_hit", src.line_of("unsigned warm_hit("), f, warm_body),
        func("escape", src.line_of("const PathView* escape("), f,
             escape_body))


def build_clean_rvalue():
    src = Src("clean_rvalue_snapshot.cpp")
    f = src.path
    l_pin = src.line_of("const auto view = committer.view();")
    l_deref = src.line_of("view->path(clause, bs)")
    l_fwd = src.line_of("return committer.view();")
    l_arg = src.line_of("consume(committer.view());")

    pinned_body = compound(
        declstmt(var("view", SHARED,
                     cleanups(construct(mtemp(view_producer(src, l_pin)),
                                        SHARED, line=l_pin)),
                     line=l_pin)),
        ifstmt(
            var("tag", TAGP,
                mcall(
                    member("path",
                           opcall("operator->",
                                  [declref("view", SHARED, line=l_deref)],
                                  VIEWP, line=l_deref, vc="prvalue"),
                           "const PolicyTag *(unsigned, unsigned) const",
                           line=l_deref, arrow=True),
                    [cast(declref("clause", "unsigned int")),
                     cast(declref("bs", "unsigned int"))],
                    TAGP, line=l_deref),
                line=l_deref),
            cast(declref("tag", TAGP)),
            ret(member("value", cast(declref("tag", TAGP)),
                       "unsigned int", arrow=True), line=l_deref),
            line=l_deref),
        ret(node("IntegerLiteral", type=ty("unsigned int"), value="0")))

    forward_body = compound(
        ret(construct(mtemp(view_producer(src, l_fwd)), SHARED, line=l_fwd),
            line=l_fwd))

    pass_body = compound(
        node("CallExpr", line=l_arg, type=ty("void"),
             valueCategory="prvalue",
             inner=[
                 cast(node("DeclRefExpr", type=ty("void (...)"),
                           referencedDecl={"id": _nid(),
                                           "kind": "FunctionDecl",
                                           "name": "consume"})),
                 construct(mtemp(view_producer(src, l_arg)), SHARED,
                           line=l_arg)]))

    return tu(
        func("warm_hit_pinned", src.line_of("unsigned warm_hit_pinned("), f,
             pinned_body),
        func("forward", src.line_of("> forward("), f, forward_body),
        func("pass_through", src.line_of("void pass_through("), f, pass_body))


def build_bad_handle():
    src = Src("bad_handle_mutation.cpp")
    f = src.path
    slab_t = "softcell::mem::Slab<softcell::Rec>"
    map_t = "softcell::FlatMap<unsigned int, softcell::Rec>"
    recp = "softcell::Rec *"

    l_get = src.line_of("Rec* rec = slab.get(h);")
    l_erase = src.line_of("slab.erase(victim);")
    l_use1 = src.line_of("return rec->value;")
    body1 = compound(
        declstmt(var("rec", recp,
                     mcall(member("get", declref("slab", slab_t, line=l_get),
                                  "Rec *(Handle)", line=l_get),
                           [cast(declref("h", "softcell::mem::Handle"))],
                           recp, line=l_get),
                     line=l_get)),
        mcall(member("erase", declref("slab", slab_t, line=l_erase),
                     "bool (Handle)", line=l_erase),
              [cast(declref("victim", "softcell::mem::Handle"))],
              "bool", line=l_erase),
        ret(member("value", cast(declref("rec", recp, line=l_use1)),
                   "unsigned int", line=l_use1, arrow=True), line=l_use1))

    l_at = src.line_of("Rec& rec = map.at(key);")
    l_emp = src.line_of("map.try_emplace(key + 1, Rec{});")
    l_use2 = src.line_of("return rec.value;")
    body2 = compound(
        declstmt(var("rec", "softcell::Rec &",
                     mcall(member("at", declref("map", map_t, line=l_at),
                                  "Rec &(const unsigned int &)", line=l_at),
                           [cast(declref("key", "unsigned int"))],
                           "softcell::Rec", line=l_at, vc="lvalue"),
                     line=l_at)),
        mcall(member("try_emplace", declref("map", map_t, line=l_emp),
                     "bool (const unsigned int &, const Rec &)", line=l_emp),
              [binop("+", cast(declref("key", "unsigned int")),
                     node("IntegerLiteral", type=ty("int"), value="1"),
                     "unsigned int", line=l_emp),
               mtemp(node("InitListExpr", type=ty("softcell::Rec"),
                          line=l_emp))],
              "bool", line=l_emp),
        ret(member("value", declref("rec", "softcell::Rec &", line=l_use2),
                   "unsigned int", line=l_use2), line=l_use2))

    return tu(
        func("bad_use_after_erase", src.line_of("unsigned bad_use_after_erase("),
             f, body1),
        func("bad_ref_across_insert",
             src.line_of("unsigned bad_ref_across_insert("), f, body2))


def build_clean_handle():
    src = Src("clean_handle_mutation.cpp")
    f = src.path
    slab_t = "softcell::mem::Slab<softcell::Rec>"
    map_t = "softcell::FlatMap<unsigned int, softcell::Rec>"
    recp = "softcell::Rec *"

    l_get = src.line_of("Rec* rec = slab.get(h);")
    l_first = src.line_of("unsigned first = rec->value;")
    l_erase = src.line_of("slab.erase(victim);")
    l_reget = src.line_of("rec = slab.get(h);")
    l_ret1 = src.line_of("return first + rec->value;")

    def slab_get(line):
        return mcall(member("get", declref("slab", slab_t, line=line),
                            "Rec *(Handle)", line=line),
                     [cast(declref("h", "softcell::mem::Handle"))],
                     recp, line=line)

    body1 = compound(
        declstmt(var("rec", recp, slab_get(l_get), line=l_get)),
        declstmt(var("first", "unsigned int",
                     cast(member("value", cast(declref("rec", recp,
                                                       line=l_first)),
                                 "unsigned int", line=l_first, arrow=True)),
                     line=l_first)),
        mcall(member("erase", declref("slab", slab_t, line=l_erase),
                     "bool (Handle)", line=l_erase),
              [cast(declref("victim", "softcell::mem::Handle"))],
              "bool", line=l_erase),
        binop("=", declref("rec", recp, line=l_reget), slab_get(l_reget),
              recp, line=l_reget),
        ret(binop("+", cast(declref("first", "unsigned int", line=l_ret1)),
                  cast(member("value", cast(declref("rec", recp,
                                                    line=l_ret1)),
                              "unsigned int", line=l_ret1, arrow=True)),
                  "unsigned int", line=l_ret1), line=l_ret1))

    l_at = src.line_of("Rec& rec = map.at(key);")
    l_read = src.line_of("unsigned v = rec.value;")
    l_er2 = src.line_of("map.erase(key);")
    l_ret2 = src.line_of("return v;")
    body2 = compound(
        declstmt(var("rec", "softcell::Rec &",
                     mcall(member("at", declref("map", map_t, line=l_at),
                                  "Rec &(const unsigned int &)", line=l_at),
                           [cast(declref("key", "unsigned int"))],
                           "softcell::Rec", line=l_at, vc="lvalue"),
                     line=l_at)),
        declstmt(var("v", "unsigned int",
                     cast(member("value", declref("rec", "softcell::Rec &",
                                                  line=l_read),
                                 "unsigned int", line=l_read)),
                     line=l_read)),
        mcall(member("erase", declref("map", map_t, line=l_er2),
                     "void (const unsigned int &)", line=l_er2),
              [cast(declref("key", "unsigned int"))], "void", line=l_er2),
        ret(cast(declref("v", "unsigned int", line=l_ret2)), line=l_ret2))

    return tu(
        func("clean_rederive", src.line_of("unsigned clean_rederive("), f,
             body1),
        func("clean_read_before", src.line_of("unsigned clean_read_before("),
             f, body2))


def guard_decl(var_name, guard_qual, owner_qual, mutex_name, line):
    """sc::LockGuard lock(mu_); with MemberExpr(mu_) on CXXThisExpr."""
    ctor = node("CXXConstructExpr", line=line, type=ty(guard_qual),
                valueCategory="prvalue",
                inner=[member(mutex_name, this_expr(owner_qual),
                              "softcell::sc::Mutex", line=line,
                              arrow=True)])
    return declstmt(var(var_name, guard_qual, ctor, line=line))


def peer_call(method, peer_name, peer_qual, owner_qual, ret_qual, line):
    """peer->method(); with MemberExpr(peer) on CXXThisExpr."""
    base = cast(member(peer_name, this_expr(owner_qual),
                       peer_qual, line=line, arrow=True))
    return mcall(member(method, base, f"void ()", line=line, arrow=True),
                 [], ret_qual, line=line)


def guard_method_call(var_name, guard_qual, method, line):
    """lock.unlock(); / lock.lock();"""
    return mcall(member(method, declref(var_name, guard_qual, line=line),
                        "void ()", line=line),
                 [], "void", line=line)


def build_bad_lock():
    src = Src("bad_lock_cycle.cpp")
    f = src.path
    guard = "softcell::sc::LockGuard"
    leader_rec = node("CXXRecordDecl", name="Leader", tagUsed="struct",
                      line=src.line_of("struct Leader {"), file=f)
    follower_rec = node("CXXRecordDecl", name="Follower", tagUsed="struct",
                        line=src.line_of("struct Follower {"))

    l_poke = src.line_of("void Leader::poke()")
    lp_body = compound(
        guard_decl("lock", guard, "softcell::Leader *", "mu_",
                   src.line_of("// Leader::mu_ held")),
        peer_call("touched", "peer", "softcell::Follower *",
                  "softcell::Leader *", "void",
                  src.line_of("// ...while Follower")))

    l_lt = src.line_of("void Leader::touched()")
    lt_body = compound(guard_decl("lock", guard, "softcell::Leader *", "mu_",
                                  l_lt))

    f_poke = src.line_of("void Follower::poke()")
    fp_body = compound(
        guard_decl("lock", guard, "softcell::Follower *", "mu_",
                   src.line_of("// Follower::mu_ held")),
        peer_call("touched", "peer", "softcell::Leader *",
                  "softcell::Follower *", "void",
                  src.line_of("// ...while Leader")))

    f_lt = src.line_of("void Follower::touched()")
    ft_body = compound(guard_decl("lock", guard, "softcell::Follower *",
                                  "mu_", f_lt))

    return tu(
        leader_rec, follower_rec,
        func("poke", l_poke, f, lp_body, kind="CXXMethodDecl",
             parent=leader_rec["id"]),
        func("touched", l_lt, f, lt_body, kind="CXXMethodDecl",
             parent=leader_rec["id"]),
        func("poke", f_poke, f, fp_body, kind="CXXMethodDecl",
             parent=follower_rec["id"]),
        func("touched", f_lt, f, ft_body, kind="CXXMethodDecl",
             parent=follower_rec["id"]))


def build_clean_lock():
    src = Src("clean_lock_cycle.cpp")
    f = src.path
    guard = "softcell::sc::LockGuard"
    ulock = "softcell::sc::UniqueLock"
    committer_rec = node("CXXRecordDecl", name="Committer", tagUsed="struct",
                         line=src.line_of("struct Committer {"), file=f)
    core_rec = node("CXXRecordDecl", name="Core", tagUsed="struct",
                    line=src.line_of("struct Core {"))

    l_submit = src.line_of("void Committer::submit()")
    submit_body = compound(
        declstmt(var("lock", ulock,
                     node("CXXConstructExpr",
                          line=src.line_of("sc::UniqueLock lock(mu_);"),
                          type=ty(ulock), valueCategory="prvalue",
                          inner=[member("mu_",
                                        this_expr("softcell::Committer *"),
                                        "softcell::sc::Mutex",
                                        arrow=True)]),
                     line=src.line_of("sc::UniqueLock lock(mu_);"))),
        guard_method_call("lock", ulock, "unlock",
                          src.line_of("lock.unlock();")),
        peer_call("apply", "core", "softcell::Core *",
                  "softcell::Committer *", "void",
                  src.line_of("core->apply();")),
        guard_method_call("lock", ulock, "lock",
                          src.line_of("lock.lock();")))

    l_enq = src.line_of("void Committer::enqueue()")
    enqueue_body = compound(
        guard_decl("lock", guard, "softcell::Committer *", "mu_", l_enq))

    l_apply = src.line_of("void Core::apply()")
    apply_body = compound(
        guard_decl("lock", guard, "softcell::Core *", "mu_", l_apply))

    l_notify = src.line_of("void Core::notify()")
    notify_body = compound(
        guard_decl("lock", guard, "softcell::Core *", "mu_",
                   src.line_of("sc::LockGuard lock(mu_);", nth=3)),
        peer_call("enqueue", "committer", "softcell::Committer *",
                  "softcell::Core *", "void",
                  src.line_of("committer->enqueue();")))

    return tu(
        committer_rec, core_rec,
        func("submit", l_submit, f, submit_body, kind="CXXMethodDecl",
             parent=committer_rec["id"]),
        func("enqueue", l_enq, f, enqueue_body, kind="CXXMethodDecl",
             parent=committer_rec["id"]),
        func("apply", l_apply, f, apply_body, kind="CXXMethodDecl",
             parent=core_rec["id"]),
        func("notify", l_notify, f, notify_body, kind="CXXMethodDecl",
             parent=core_rec["id"]))


BUILDERS = {
    "bad_rvalue_snapshot": build_bad_rvalue,
    "clean_rvalue_snapshot": build_clean_rvalue,
    "bad_handle_mutation": build_bad_handle,
    "clean_handle_mutation": build_clean_handle,
    "bad_lock_cycle": build_bad_lock,
    "clean_lock_cycle": build_clean_lock,
}


def main(argv):
    if len(argv) not in (2, 3):
        print("usage: make_asts.py <output-dir> [source-dir]",
              file=sys.stderr)
        return 2
    out_dir = argv[1]
    if len(argv) == 3:
        global SRC_DIR
        SRC_DIR = os.path.abspath(argv[2])
    os.makedirs(out_dir, exist_ok=True)
    for name, build in sorted(BUILDERS.items()):
        dump = build()
        path = os.path.join(out_dir, f"{name}.ast.json")
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(dump, fh, indent=1)
            fh.write("\n")
        print(path)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
