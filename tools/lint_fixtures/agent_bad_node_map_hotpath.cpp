// Fixture: node-map-hotpath must fire.  Per-UE / per-flow resident state
// declared as node-based std:: maps in "agent" code, without the file-wide
// slab-owner marker that the legacy-layout owners carry (the marker itself
// cannot be spelled here: the raw-text scan would exempt this file) --
// exactly the regression class that re-grows the million-UE footprint
// (DESIGN.md section 15: per-node allocation overhead dominates at scale).
// The file never compiles as part of the build; the lint test feeds it to
// softcell_lint.py and asserts the findings.  The rule scopes by path
// segment, so the fixture keeps "agent" in its file name.

struct BadUeDirectory {
  std::unordered_map<UeId, UeRecord> ues_;          // must fire
  std::map<FlowKey, FlowEntry> flows_;              // must fire
  std::unordered_map<LocalUeId, State> by_local_;   // must fire
  std::unordered_map<PublicEndpoint, FlowKey, EndpointHash> nat_in_;  // fires
};

// Control: the slab-layout containers are exactly what the rule wants and
// must NOT fire.
struct GoodUeDirectory {
  mem::SlabMap<UeId, UeRecord> ues_;
  mem::Slab<FlowRec> flow_slab_;
  FlatMap<FlowKey, Handle> flow_index_;
};

// Control: node maps keyed by something other than the per-UE/per-flow hot
// keys (a tag-indexed debug aggregate) are out of scope and must NOT fire.
struct UnrelatedAggregate {
  std::unordered_map<PolicyTag, int> tag_counts_;
};

// Control: prose mentioning std::unordered_map<UeId, X> in a comment and
// the spelling "std::unordered_map<FlowKey, Y>" in a string must NOT fire.
const char* kDoc = "std::unordered_map<FlowKey, Y> is the legacy layout";
