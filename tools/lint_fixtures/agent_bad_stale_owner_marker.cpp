// Lint fixture: every file-wide owner marker here is stale -- the file
// carries the exemptions but none of the code they justified remains, so
// each marker must be reported (one stale finding per marker line).
// The "agent_" prefix keeps the file inside the node-map hot-dir scope so
// the slab-owner marker is audited at all.
// sc-lint: metrics-owner(AggPerf) -- BAD: no perf counter is mutated here
// sc-lint: commit-owner(Controller) -- BAD: no engine install/remove here
#include <unordered_map>  // sc-lint: slab-owner(legacy) -- BAD: no node map

namespace softcell {

int plain_arithmetic(int x) { return x * 2 + 1; }

}  // namespace softcell
