// Fixture: controller-construct must fire.  Controller instances belong to
// the sim/ and cluster/ composition roots; a stray one bypasses the fleet's
// partition-ownership leases.
#include <memory>

void rogue_controllers(const CellularTopology& topo, Policy policy) {
  Controller ctrl(topo, policy);                     // finding: stack ()
  Controller braced{topo, policy};                   // finding: stack {}
  auto* heap = new Controller(topo, policy);         // finding: new
  auto smart = std::make_unique<Controller>(topo);   // finding: make_unique
  auto shared = std::make_shared<Controller>(topo);  // finding: make_shared
  delete heap;
  (void)smart;
  (void)shared;
  (void)ctrl;
  (void)braced;
}

// Control: references, pointers, the Controller-affixed types and prose
// mentioning "new Controller(...)" in a string must NOT fire.
void fine(Controller& ref, Controller* ptr, const ControllerOptions& opts) {
  ShardedController sharded(opts);
  ControllerFleet fleet(opts);
  const char* msg = "never new Controller() outside the roots";
  (void)ref;
  (void)ptr;
  (void)sharded;
  (void)fleet;
  (void)msg;
}
