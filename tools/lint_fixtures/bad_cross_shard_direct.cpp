// Known-bad fixture for the cross-shard-direct rule: direct switch-table
// mutations through an engine receiver, in a file that does not carry the
// commit-owner exemption marker.  Expected findings: 4 (the two
// installs, the shortcut install, and the remove).  The read-only calls,
// the off-verb receiver, and the comment/string controls stay silent.
//
// NOT part of the build; only tools/softcell_lint.py reads this file.

#include <cstdint>
#include <optional>
#include <vector>

namespace softcell::lintfixture {

struct FakeResult {
  std::uint64_t path = 0;
  std::uint16_t tag = 0;
};

struct FakeEngine {
  FakeResult install(int path, int bs, int origin, std::optional<int> reuse) {
    return {static_cast<std::uint64_t>(path + bs + origin + !!reuse), 1};
  }
  std::uint64_t install_ue_shortcut(int dir, int tag, int prefix) {
    return static_cast<std::uint64_t>(dir + tag + prefix);
  }
  void remove(std::uint64_t) {}
  void remove_listener(int) {}  // off-verb control: never matches
  int lookup(int key) const { return key; }  // read control: never matches
};

struct FakeBrain {
  FakeEngine engine_;
  FakeEngine& engine() { return engine_; }
};

inline std::uint64_t mutate_rows_behind_the_committers_back(FakeBrain& brain,
                                                            FakeBrain* ptr) {
  // FINDING: member-receiver install outside the commit-owner file.
  const auto up = brain.engine_.install(1, 2, 3, std::nullopt);
  // FINDING: accessor-receiver shortcut install through a pointer.
  const auto cut = ptr->engine().install_ue_shortcut(0, up.tag, 24);
  // FINDING: accessor-receiver install.
  const auto down = brain.engine().install(4, 5, 6, up.tag);
  // FINDING: member-receiver remove through a pointer.
  ptr->engine_.remove(down.path);

  // Controls -- none of these may fire:
  brain.engine_.remove_listener(7);          // off-verb suffix
  const int hit = brain.engine().lookup(9);  // read-only call
  // prose control: engine_.install(...) named in a comment stays silent
  const char* doc = "engine_.remove(id) in a string literal stays silent";
  return cut + static_cast<std::uint64_t>(hit) + (doc ? 1u : 0u);
}

}  // namespace softcell::lintfixture
