// Fixture: hotpath-blocking must fire.  A lock acquisition, a sleep and a
// node-based container declaration inside a marked hot region.
#include <map>

void warm_path(State& s) {
  // sc-lint: hotpath(fixture-loop)
  for (int i = 0; i < 64; ++i) {
    sc::LockGuard lock(s.mu);                       // finding: lock in hotpath
    std::this_thread::sleep_for(kTick);             // finding: sleep
    std::unordered_map<int, int> scratch;           // finding: unordered_map
    s.total += scratch.size() + i;
  }
  // sc-lint: endhotpath(fixture-loop)

  // Control: outside the region the same tokens must NOT fire.
  sc::LockGuard lock(s.mu);
  std::unordered_map<int, int> fine;
  s.total += fine.size();
}

// Control: an unterminated region is itself a finding.
void leaky_region(State& s) {
  // sc-lint: hotpath(never-closed)
  s.total += 1;
}
