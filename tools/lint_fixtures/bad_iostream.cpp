// Fixture: iostream-write must fire.  Library code writing to the process
// streams interleaves worker output and serializes on the global stream
// locks.
#include <cstdio>
#include <iostream>

void report_progress(int step) {
  std::cout << "step " << step << "\n";   // finding: std::cout
  std::cerr << "warn\n";                  // finding: std::cerr
  printf("step %d\n", step);              // finding: printf
}

// Control: an ostringstream sink must NOT fire.
#include <sstream>
std::string render(int step) {
  std::ostringstream out;
  out << "step " << step;
  return out.str();
}
