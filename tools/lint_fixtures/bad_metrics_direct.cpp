// Fixture: metrics-direct must fire.  This file has NO
// "sc-lint: metrics-owner(...)" marker, so every write to the known
// counter-struct receivers is a finding.

struct AggPerf {
  unsigned long long installs = 0;
  unsigned long long memo_hits = 0;
  unsigned long long drops = 0;
};

struct Holder {
  AggPerf perf_;
  AggPerf fault_stats_;

  void poke() {
    ++perf_.installs;            // finding: prefix increment
    fault_stats_.drops += 1;     // finding: compound assign
    perf_.memo_hits--;           // finding: postfix decrement
    perf_ = AggPerf{};           // finding: whole-struct reset
  }

  // Controls: reads and comparisons must NOT fire.
  unsigned long long read() const { return perf_.installs; }
  bool saturated() const { return fault_stats_.drops == 3; }
};

// Control: prose mentioning "++perf_.installs" in a comment must NOT fire,
// nor must the string literal below.
const char* kDoc = "never write ++perf_.installs outside the owner";
