// Fixture: naked-mutex must fire.  Raw std:: primitives bypass the sc::
// capability wrappers, so the Clang -Wthread-safety build cannot see the
// acquisitions.
#include <mutex>

struct UnannotatedState {
  std::mutex mu;                     // finding: std::mutex
  std::condition_variable cv;        // finding: std::condition_variable
  int counter = 0;

  void bump() {
    std::lock_guard<std::mutex> lock(mu);  // finding: std::lock_guard
    ++counter;
  }
};

// Control: prose mentioning a mutex in a comment must NOT fire, and
// neither must the string below.
// "the mutex is not needed here because the field is an atomic"
const char* kMsg = "std::mutex in a string literal is not a lock";
