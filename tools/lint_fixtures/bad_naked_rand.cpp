// Fixture: naked-rand must fire.  Randomness outside util/rng.hpp breaks
// the chaos harness's seed-replay determinism.
#include <cstdlib>
#include <random>

int roll_the_dice() {
  std::random_device rd;             // finding: std::random_device
  std::mt19937 gen(rd());            // finding: std::mt19937
  srand(42);                         // finding: srand
  return rand() % 6;                 // finding: rand
}

// Control: the project Rng and words containing 'rand' must NOT fire.
int fine(Rng& rng) {
  int operand = 3;                   // 'rand' inside an identifier
  return static_cast<int>(rng.next_below(6)) + operand;
}
