// Fixture: raw-socket must fire.  Socket/epoll syscalls and their system
// headers outside a `net` path segment -- transport code growing outside
// the one layer (src/net/) whose fd lifecycle, partial-read/short-write
// handling and NetStats accounting are actually tested over real loopback
// sockets (DESIGN.md section 18).  The file never compiles as part of the
// build; the lint test feeds it to softcell_lint.py and asserts the
// findings.  The rule scopes by path segment, so this fixture lives
// outside any `net` directory.

#include <sys/socket.h>   // must fire (header)
#include <netinet/tcp.h>  // must fire (header)

int bad_transport() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);  // must fire
  ::connect(fd, nullptr, 0);                         // must fire
  ::send(fd, "x", 1, 0);                             // must fire
  char buf[8];
  ::recv(fd, buf, sizeof buf, 0);                    // must fire
  return ::epoll_create1(0);                         // must fire
}

// Control: qualified names and member calls are not syscalls and must NOT
// fire -- the `::` anchor requires global scope.
void good_channel(Transport& transport, Channel& chan, Peer* peer) {
  transport::connect(chan);  // namespace-qualified, not ::connect
  chan.send(1);
  peer->recv(2);
  chan.bind_shard(3);
}

// Control: prose and strings mentioning the syscalls must NOT fire.
const char* kDoc = "::socket(AF_INET) and #include <sys/socket.h> belong "
                   "under src/net/";
