// Fixture: epoch-bump must fire.  A tag-class mutation in "dataplane" code
// with no note_tag() bump within the window -- exactly the bug class that
// poisons the Algorithm-1 memo (stale epoch, stale resolve summary).
// The file never compiles as part of the build; the lint test feeds it to
// softcell_lint.py and asserts the finding.  The rule only looks at
// dataplane code, so the fixture keeps "dataplane" in its file name.

void TagClass_add_default_without_epoch_bump(Cls& cls, RuleAction action) {
  cls.def = Entry{action, 1};
  // ... many lines of unrelated bookkeeping so no note_tag is in range ...
  bump_rules(+1);
  refresh_digest();
  update_counters();
  recompute_summary();
  log_install();
  touch_lru();
  finalize();
}

void TagClass_erase_without_epoch_bump(Cls& cls, Prefix pre) {
  cls.by_prefix.erase(pre);
  bump_rules(-1);
  refresh_digest();
  update_counters();
  recompute_summary();
  log_install();
  touch_lru();
  finalize();
}

// Control: this mutation is correctly paired and must NOT fire.
void TagClass_add_prefix_with_bump(Cls& cls, Prefix pre, RuleAction action,
                                   Direction dir, PolicyTag tag) {
  cls.by_prefix.emplace(pre, Entry{action, 1});
  note_tag(dir, tag, +1);
}

// Control: location-tier mutations carry no tag epoch and must NOT fire.
void LocationTier_add(Tier& tier, Prefix pre, LocationEntry e) {
  tier.by_prefix.emplace(pre, e);
}
