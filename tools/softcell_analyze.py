#!/usr/bin/env python3
"""softcell-analyze: AST-grounded lifetime & lock-order analysis.

Consumes ``clang++ -Xclang -ast-dump=json`` output (no third-party
dependencies) and runs three project-specific checkers that the regex
linter (softcell_lint.py) fundamentally cannot express:

  rvalue-snapshot-deref   member access or pointer escape through a
                          *temporary* shared_ptr snapshot (the PR 8
                          PathView use-after-free shape, generalized to
                          every RCU snapshot type).  Pin the snapshot in
                          a named local first.

  handle-across-mutation  a pointer/reference derived from a
                          Slab/SlabMap/FlatMap stays live across a call
                          that may mutate the owning container, without
                          being re-derived (generation recheck).

  lock-order-cycle        extracts sc:: guard acquisitions per function,
                          builds the inter-procedural acquisition graph
                          (modelling mid-scope unlock()/lock() on
                          UniqueLock -- the CoreCommitter choreography),
                          and fails on any cycle whose edges are not all
                          declared in tools/lock_order.txt.

Exit codes:
  0  clean
  1  findings (or stale suppressions)
  2  bad invocation / malformed input
  3  environment cannot analyze (clang++ missing or no JSON AST support)
     -- tier1.sh maps this to a visible SKIP.

Suppressions mirror softcell_lint.py:
  * inline, on the finding line or the line above:
        // sc-analyze: suppress(<checker>) <justification>
  * file tools/analyze_suppressions.txt:
        <checker> <path>:<line> <justification>
  Stale entries (matching no diagnostic) are themselves failures.

AST dumps are cached under --cache-dir keyed on a content hash of
(source bytes, compile args, clang version); edit the file or bump the
compiler and the entry is invalidated.
"""

from __future__ import annotations

import argparse
import gzip
import hashlib
import json
import os
import re
import subprocess
import sys
import tempfile

VERSION = "softcell-analyze-1"

CHECKERS = ("rvalue-snapshot-deref", "handle-across-mutation", "lock-order-cycle")

# ----------------------------------------------------------------------------
# Type / name patterns grounding the checkers in the softcell tree.
# ----------------------------------------------------------------------------

# RCU snapshot payload types: anything published through VersionedSnapshot
# or the CoreCommitter.  qualType strings look like
# "std::shared_ptr<const softcell::PathView>".
SNAPSHOT_TYPE_RE = re.compile(
    r"shared_ptr<\s*(?:const\s+)?(?:[A-Za-z_]\w*::)*"
    r"(?:[A-Za-z_]\w*(?:View|Snapshot)|ServicePolicy)\s*>"
)

# Containers whose element pointers/references can be invalidated.
CONTAINER_KIND_RE = re.compile(
    r"(?:^|[\s:<(&])((?:[A-Za-z_]\w*::)*)(Slab|SlabMap|FlatMap|FlatSet)\s*<"
)

# Methods that hand out a pointer/reference into a container.
DERIVER_NAMES = {"get", "find", "at", "begin", "end", "operator[]"}

# Methods that may invalidate previously derived pointers, per container.
MUTATORS = {
    "Slab": {"erase", "clear"},
    "SlabMap": {"erase", "clear"},
    "FlatMap": {"try_emplace", "emplace", "insert", "erase", "clear",
                "reserve", "rehash", "operator[]"},
    "FlatSet": {"insert", "erase", "clear", "reserve", "rehash"},
}

# sc:: guard types.  qualType strings look like "softcell::sc::LockGuard"
# or "sc::UniqueLock" in fixtures.
GUARD_TYPE_RE = re.compile(
    r"(?:^|\s|::)sc::(LockGuard|UniqueLock|WriteLock|ReadLock)\b"
)

# Expression wrapper kinds that carry no semantics for our purposes.
WRAPPER_KINDS = {
    "MaterializeTemporaryExpr",
    "ImplicitCastExpr",
    "ExprWithCleanups",
    "CXXBindTemporaryExpr",
    "ParenExpr",
    "ConstantExpr",
    "CXXFunctionalCastExpr",
    "CXXStaticCastExpr",
    "CXXConstCastExpr",
    "FullComma",  # never emitted; placeholder
}

SUPPRESS_INLINE_RE = re.compile(
    r"//\s*sc-analyze:\s*suppress\(([a-z-]+)\)\s*(.*)$"
)


def class_of(qual_type: str) -> str:
    """Last class-ish name in a qualType, sans namespaces/templates/cv."""
    t = qual_type
    # Drop template arguments: take text before the first '<'.
    t = t.split("<", 1)[0]
    t = t.replace("*", " ").replace("&", " ")
    t = re.sub(r"\b(const|volatile|struct|class)\b", " ", t)
    t = t.strip()
    if "::" in t:
        t = t.rsplit("::", 1)[1]
    return t.strip()


def container_kind(qual_type: str):
    m = CONTAINER_KIND_RE.search(qual_type)
    return m.group(2) if m else None


# ----------------------------------------------------------------------------
# AST walking with clang's line/file carry-forward semantics.
# ----------------------------------------------------------------------------

class Pos:
    __slots__ = ("file", "line")

    def __init__(self):
        self.file = "<unknown>"
        self.line = 0


class Finding:
    __slots__ = ("checker", "path", "line", "message")

    def __init__(self, checker, path, line, message):
        self.checker = checker
        self.path = path
        self.line = line
        self.message = message

    def key(self):
        return (self.checker, self.path, self.line)

    def render(self):
        return f"{self.path}:{self.line}: [{self.checker}] {self.message}"


def _absorb_loc(loc, pos: Pos):
    """Update carry-forward state from one serialized location object.

    clang omits "file"/"line" when unchanged from the previously printed
    location; macro locations nest spellingLoc/expansionLoc (both are
    printed, expansion last, so absorb in key order).
    """
    if not isinstance(loc, dict):
        return (pos.file, pos.line)
    out = None
    if "spellingLoc" in loc or "expansionLoc" in loc:
        for key in ("spellingLoc", "expansionLoc"):
            if key in loc:
                out = _absorb_loc(loc[key], pos)
        return out if out else (pos.file, pos.line)
    if "file" in loc:
        pos.file = loc["file"]
    if "line" in loc:
        pos.line = loc["line"]
    return (pos.file, pos.line)


class Ast:
    """One parsed translation unit with resolved per-node positions."""

    def __init__(self, root: dict, default_file: str):
        self.root = root
        self.pos_of = {}       # id(node) -> (file, line)
        self.parent_of = {}    # id(node) -> parent node (or None)
        self._resolve(root, Pos(), None, default_file)

    def _resolve(self, node, pos, parent, default_file):
        if not isinstance(node, dict):
            return
        begin = None
        for key, val in node.items():
            if key == "loc":
                p = _absorb_loc(val, pos)
                if begin is None and p[1]:
                    begin = p
            elif key == "range" and isinstance(val, dict):
                p = _absorb_loc(val.get("begin", {}), pos)
                if begin is None and p[1]:
                    begin = p
                _absorb_loc(val.get("end", {}), pos)
        if begin is None:
            begin = (pos.file, pos.line)
        if begin[0] == "<unknown>" and default_file:
            begin = (default_file, begin[1])
        self.pos_of[id(node)] = begin
        self.parent_of[id(node)] = parent
        for child in node.get("inner", []) or []:
            self._resolve(child, pos, node, default_file)

    def pos(self, node):
        return self.pos_of.get(id(node), ("<unknown>", 0))

    def parent(self, node):
        return self.parent_of.get(id(node))


def strip_wrappers(node):
    """Descend through semantics-free wrapper expressions."""
    while isinstance(node, dict) and node.get("kind") in WRAPPER_KINDS:
        inner = node.get("inner") or []
        if len(inner) != 1:
            # CXXConstructExpr-like multi-child handled by callers.
            break
        node = inner[0]
    return node


def significant_ancestor(ast: Ast, node):
    """First ancestor that is not a pure wrapper (CXXConstructExpr with a
    single argument counts as a wrapper: copy/move construction)."""
    cur = ast.parent(node)
    while cur is not None:
        kind = cur.get("kind")
        if kind in WRAPPER_KINDS:
            cur = ast.parent(cur)
            continue
        if kind == "CXXConstructExpr" and len(cur.get("inner") or []) == 1:
            cur = ast.parent(cur)
            continue
        return cur
    return None


def callee_name(call_node):
    """Name of the called function/operator for Call/MemberCall/OperatorCall."""
    inner = call_node.get("inner") or []
    if not inner:
        return None
    head = strip_wrappers(inner[0])
    kind = head.get("kind")
    if kind == "MemberExpr":
        name = head.get("name", "")
        return name.lstrip(".->") or None
    if kind == "DeclRefExpr":
        ref = head.get("referencedDecl") or {}
        return ref.get("name")
    if kind == "UnresolvedLookupExpr":
        return head.get("name")
    return None


def member_callee_parts(call_node):
    """(method_name, base_node) for a CXXMemberCallExpr, else (None, None)."""
    inner = call_node.get("inner") or []
    if not inner:
        return None, None
    head = strip_wrappers(inner[0])
    if head.get("kind") != "MemberExpr":
        return None, None
    base_inner = head.get("inner") or []
    base = strip_wrappers(base_inner[0]) if base_inner else None
    name = head.get("name", "").lstrip(".->")
    return name or None, base


def expr_key(node):
    """Canonical identity string for a receiver expression."""
    if not isinstance(node, dict):
        return "?"
    node = strip_wrappers(node)
    kind = node.get("kind")
    if kind == "DeclRefExpr":
        ref = node.get("referencedDecl") or {}
        return ref.get("name", node.get("name", "?"))
    if kind == "MemberExpr":
        inner = node.get("inner") or []
        base = strip_wrappers(inner[0]) if inner else None
        name = node.get("name", "?").lstrip(".->")
        if base is not None and base.get("kind") == "CXXThisExpr":
            return name
        return f"{expr_key(base)}.{name}"
    if kind == "CXXThisExpr":
        return "this"
    if kind == "ArraySubscriptExpr":
        inner = node.get("inner") or []
        base = expr_key(inner[0]) if inner else "?"
        return f"{base}[]"
    if kind == "UnaryOperator":
        inner = node.get("inner") or []
        return expr_key(inner[0]) if inner else "?"
    if kind in ("CallExpr", "CXXMemberCallExpr", "CXXOperatorCallExpr"):
        name, base = member_callee_parts(node)
        if name:
            return f"{expr_key(base)}.{name}()"
        return f"{callee_name(node) or '?'}()"
    return kind or "?"


def qual_type(node):
    t = node.get("type") or {}
    return t.get("qualType", "")


# ----------------------------------------------------------------------------
# Checker 1: rvalue-snapshot-deref
# ----------------------------------------------------------------------------

def check_rvalue_snapshot(ast: Ast, findings):
    def visit(node):
        if not isinstance(node, dict):
            return
        kind = node.get("kind")
        if kind in ("CXXMemberCallExpr", "CallExpr", "CXXOperatorCallExpr"):
            qt = qual_type(node)
            if SNAPSHOT_TYPE_RE.search(qt) and _is_producer(node):
                anc = significant_ancestor(ast, node)
                verdict = _classify_snapshot_use(ast, node, anc)
                if verdict:
                    path, line = ast.pos(node)
                    findings.append(Finding(
                        "rvalue-snapshot-deref", path, line,
                        f"{verdict} through a temporary '{qt}' -- pin the "
                        "snapshot in a named local so it outlives the access "
                        "(see DESIGN.md §12.4 / §17.1)"))
        for child in node.get("inner", []) or []:
            visit(child)

    visit(ast.root)


def _is_producer(call_node):
    """True when the call produces a fresh snapshot (not a re-read of a
    named shared_ptr local, which DeclRefExpr uses never are)."""
    if call_node.get("kind") == "CXXOperatorCallExpr":
        # operator-> / operator* on shared_ptr yields the payload, not a
        # snapshot; operator= returns shared_ptr& (not prvalue).  Only
        # treat call operators producing shared_ptr by value as producers.
        name = callee_name(call_node)
        if name in ("operator->", "operator*", "operator="):
            return False
    vk = call_node.get("valueCategory", "prvalue")
    return vk == "prvalue"


def _classify_snapshot_use(ast: Ast, call_node, anc):
    """Return a description string when the use is unsafe, else None."""
    if anc is None:
        return None
    kind = anc.get("kind")
    if kind == "MemberExpr":
        name = anc.get("name", "").lstrip(".->")
        if name in ("get", "operator->", "operator*"):
            return f"pointer escape via '.{name}()'"
        return f"member access '.{name}'"
    if kind == "CXXOperatorCallExpr":
        name = callee_name(anc)
        if name in ("operator->", "operator*"):
            # The snapshot must be the object argument (first child after
            # the callee ref).
            inner = anc.get("inner") or []
            if len(inner) >= 2:
                obj = strip_wrappers(inner[1])
                if _contains(obj, call_node):
                    return f"dereference via '{name}'"
        return None
    if kind == "UnaryOperator" and anc.get("opcode") == "*":
        return "dereference via 'operator*'"
    # VarDecl (pinned), ReturnStmt, call argument, ctor argument: safe --
    # the full-expression or the new owner keeps the control block alive.
    return None


def _contains(haystack, needle):
    if haystack is needle:
        return True
    if not isinstance(haystack, dict):
        return False
    for child in haystack.get("inner", []) or []:
        if _contains(child, needle):
            return True
    return False


# ----------------------------------------------------------------------------
# Checkers 2+3 share a per-function linear event walk.
# ----------------------------------------------------------------------------

class FunctionScan:
    """Linear (source-order) facts extracted from one function body."""

    def __init__(self, name, path, line):
        self.name = name          # "Class::method" or bare name
        self.path = path
        self.line = line
        self.acquires = []        # (lock_id, held_tuple_before, file, line)
        self.calls = []           # (callee_keys, held_tuple, file, line)


def function_name(ast: Ast, node, record_names, record_stack):
    name = node.get("name", "")
    cls = None
    if record_stack:
        cls = record_stack[-1]
    pid = node.get("parentDeclContextId")
    if pid is not None and pid in record_names:
        cls = record_names[pid]
    if cls:
        return f"{cls}::{name}"
    return name


def scan_functions(ast: Ast, analysis):
    """Walk the TU; run handle-across-mutation inline and collect lock
    facts (FunctionScan) for the global lock-order pass."""
    record_names = {}

    def index_records(node):
        if not isinstance(node, dict):
            return
        if node.get("kind") in ("CXXRecordDecl", "ClassTemplateSpecializationDecl"):
            nid = node.get("id")
            if nid is not None and node.get("name"):
                record_names[nid] = node["name"]
        for child in node.get("inner", []) or []:
            index_records(child)

    index_records(ast.root)

    def visit(node, record_stack):
        if not isinstance(node, dict):
            return
        kind = node.get("kind")
        if kind in ("CXXRecordDecl", "ClassTemplateSpecializationDecl"):
            name = node.get("name")
            record_stack = record_stack + [name] if name else record_stack
        if kind in ("FunctionDecl", "CXXMethodDecl", "CXXConstructorDecl",
                    "CXXDestructorDecl"):
            body = None
            for child in node.get("inner", []) or []:
                if isinstance(child, dict) and child.get("kind") == "CompoundStmt":
                    body = child
            if body is not None:
                fname = function_name(ast, node, record_names, record_stack)
                path, line = ast.pos(node)
                scan = FunctionScan(fname, path, line)
                _scan_body(ast, body, scan, analysis)
                analysis.add_function(scan)
        for child in node.get("inner", []) or []:
            visit(child, record_stack)

    visit(ast.root, [])


def _guard_lock_id(ast: Ast, ctor_arg, enclosing_record_hint=None):
    """Lock identity 'Owner::member' from the guard constructor argument."""
    arg = strip_wrappers(ctor_arg)
    kind = arg.get("kind")
    if kind == "MemberExpr":
        name = arg.get("name", "?").lstrip(".->")
        inner = arg.get("inner") or []
        base = strip_wrappers(inner[0]) if inner else None
        if base is not None:
            bq = qual_type(base)
            owner = class_of(bq)
            if owner:
                return f"{owner}::{name}"
        if enclosing_record_hint:
            return f"{enclosing_record_hint}::{name}"
        return f"?::{name}"
    if kind == "DeclRefExpr":
        ref = arg.get("referencedDecl") or {}
        name = ref.get("name", arg.get("name", "?"))
        owner = class_of(qual_type(arg))
        if owner and owner not in ("Mutex", "SharedMutex"):
            return f"{owner}::{name}"
        return f"::{name}"
    return None


def _scan_body(ast: Ast, body, scan: FunctionScan, analysis):
    """Linear walk of one function body.

    Tracks:
      * guard variables (name -> lock_id, held?) with block scoping and
        mid-scope unlock()/lock() toggles;
      * container-derived pointers (name -> (receiver_key, kind)) with
        poisoning on mutation and clearing on re-assignment;
      * calls with the held-lock set at the call site.
    Lambda bodies are scanned as separate anonymous functions.
    """
    guards = {}          # var name -> [lock_id, held(bool), depth]
    derived = {}         # var name -> [receiver_key, container, depth,
                         #              poisoned_by (None | (line, mutator))]
    skip_use_ids = set() # DeclRefExpr nodes consumed by assignment LHS

    def held_tuple():
        return tuple(sorted({g[0] for g in guards.values() if g[1]}))

    def handle_var_decl(node, depth):
        name = node.get("name")
        qt = qual_type(node)
        init = None
        for child in node.get("inner", []) or []:
            if isinstance(child, dict) and child.get("kind") not in (
                    "TypedefDecl", "TemplateArgument"):
                init = child
        if name is None:
            return
        gm = GUARD_TYPE_RE.search(qt)
        if gm and init is not None:
            ctor = strip_wrappers(init)
            args = [c for c in (ctor.get("inner") or [])
                    if isinstance(c, dict)]
            if ctor.get("kind") == "CXXConstructExpr" and args:
                lock_id = _guard_lock_id(ast, args[0])
                if lock_id:
                    path, line = ast.pos(node)
                    scan.acquires.append((lock_id, held_tuple(), path, line))
                    guards[name] = [lock_id, True, depth]
            return
        if init is not None:
            dk = _derive_from(init)
            if dk and _is_ptr_like(qt):
                derived[name] = [dk[0], dk[1], depth, None]
                return
        # A fresh non-derived declaration shadows any tracked state.
        derived.pop(name, None)

    def _is_ptr_like(qt):
        return "*" in qt or "&" in qt or "iterator" in qt

    def _derive_from(init):
        """(receiver_key, container_kind) when init derives a pointer from
        a tracked container, else None."""
        e = strip_wrappers(init)
        if e.get("kind") == "UnaryOperator" and e.get("opcode") == "&":
            inner = e.get("inner") or []
            if inner:
                e = strip_wrappers(inner[0])
        if e.get("kind") == "CXXMemberCallExpr":
            name, base = member_callee_parts(e)
            if name in DERIVER_NAMES and base is not None:
                ck = container_kind(qual_type(base))
                if ck:
                    return (expr_key(base), ck)
        elif e.get("kind") == "CXXOperatorCallExpr":
            name = callee_name(e)
            inner = e.get("inner") or []
            if name == "operator[]" and len(inner) >= 2:
                base = strip_wrappers(inner[1])
                ck = container_kind(qual_type(base))
                if ck:
                    return (expr_key(base), ck)
        return None

    def handle_member_call(node):
        name, base = member_callee_parts(node)
        if name is None:
            return
        # Guard toggles.
        if base is not None and base.get("kind") == "DeclRefExpr":
            ref = (base.get("referencedDecl") or {})
            vname = ref.get("name", base.get("name"))
            if vname in guards and name in ("lock", "unlock"):
                guards[vname][1] = (name == "lock")
                if name == "lock":
                    g = guards[vname]
                    path, line = ast.pos(node)
                    scan.acquires.append((g[0], held_tuple(), path, line))
                return
        # Container mutation -> poison derived pointers for this receiver.
        if base is not None:
            ck = container_kind(qual_type(base))
            if ck and name in MUTATORS.get(ck, ()):
                rkey = expr_key(base)
                path, line = ast.pos(node)
                for var, st in derived.items():
                    if st[0] == rkey and st[3] is None:
                        st[3] = (line, name)

    def handle_operator_call(node):
        name = callee_name(node)
        inner = node.get("inner") or []
        if name == "operator[]" and len(inner) >= 2:
            base = strip_wrappers(inner[1])
            ck = container_kind(qual_type(base))
            if ck and "operator[]" in MUTATORS.get(ck, ()):
                rkey = expr_key(base)
                _, line = ast.pos(node)
                for var, st in derived.items():
                    if st[0] == rkey and st[3] is None:
                        st[3] = (line, "operator[]")

    def record_call(node):
        """Register an outgoing call edge with the current held set."""
        keys = []
        if node.get("kind") == "CXXMemberCallExpr":
            name, base = member_callee_parts(node)
            if name:
                if base is not None:
                    cls = class_of(qual_type(base))
                    if cls:
                        keys.append(f"{cls}::{name}")
                keys.append(name)
        else:
            name = callee_name(node)
            if name:
                keys.append(name)
        if keys:
            path, line = ast.pos(node)
            scan.calls.append((tuple(keys), held_tuple(), path, line))

    def handle_assign(node):
        inner = [c for c in (node.get("inner") or []) if isinstance(c, dict)]
        if len(inner) != 2:
            return
        lhs = strip_wrappers(inner[0])
        if lhs.get("kind") == "DeclRefExpr":
            ref = lhs.get("referencedDecl") or {}
            vname = ref.get("name", lhs.get("name"))
            if vname in derived:
                skip_use_ids.add(id(inner[0]))
                skip_use_ids.add(id(lhs))
                dk = _derive_from(inner[1])
                if dk:
                    derived[vname] = [dk[0], dk[1], derived[vname][2], None]
                else:
                    derived.pop(vname, None)

    def check_use(node):
        ref = node.get("referencedDecl") or {}
        vname = ref.get("name", node.get("name"))
        st = derived.get(vname)
        if st and st[3] is not None and id(node) not in skip_use_ids:
            path, line = ast.pos(node)
            mline, mname = st[3]
            analysis.findings.append(Finding(
                "handle-across-mutation", path, line,
                f"'{vname}' (derived from {st[1]} '{st[0]}') used after "
                f"'{st[0]}.{mname}(...)' at line {mline} may have "
                "invalidated it -- re-derive via get()/find() after the "
                "mutation (generation recheck, DESIGN.md §17.2)"))
            st[3] = None  # one report per poisoning

    def walk(node, depth):
        if not isinstance(node, dict):
            return
        kind = node.get("kind")
        if kind == "LambdaExpr":
            # The lambda body is its own scope/function; scan separately
            # so captured guards don't leak across.
            for child in node.get("inner", []) or []:
                if isinstance(child, dict) and child.get("kind") == "CompoundStmt":
                    sub = FunctionScan(f"{scan.name}::<lambda>", *ast.pos(node))
                    _scan_body(ast, child, sub, analysis)
                    analysis.add_function(sub)
            return
        if kind == "CompoundStmt":
            for child in node.get("inner", []) or []:
                walk(child, depth + 1)
            # Scope exit: release guards and forget pointers declared here.
            for name in [n for n, g in guards.items() if g[2] >= depth + 1]:
                del guards[name]
            for name in [n for n, st in derived.items() if st[2] >= depth + 1]:
                del derived[name]
            return
        if kind == "VarDecl":
            handle_var_decl(node, depth)
            # Still walk the initializer for producer calls inside it.
            for child in node.get("inner", []) or []:
                walk(child, depth)
            return
        if kind == "BinaryOperator" and node.get("opcode") == "=":
            handle_assign(node)
        if kind == "CXXMemberCallExpr":
            handle_member_call(node)
            record_call(node)
        elif kind == "CXXOperatorCallExpr":
            handle_operator_call(node)
        elif kind == "CallExpr":
            record_call(node)
        elif kind == "DeclRefExpr":
            check_use(node)
        for child in node.get("inner", []) or []:
            walk(child, depth)

    walk(body, 0)


# ----------------------------------------------------------------------------
# Global lock-order analysis (across all scanned TUs).
# ----------------------------------------------------------------------------

class LockOrderGraph:
    def __init__(self):
        self.functions = {}   # name -> FunctionScan (first wins)

    def count(self):
        return len({id(s) for s in self.functions.values()})

    def add(self, scan: FunctionScan):
        self.functions.setdefault(scan.name, scan)
        # Also index by bare method name for unqualified resolution.
        if "::" in scan.name:
            bare = scan.name.rsplit("::", 1)[1]
            self.functions.setdefault(bare, scan)

    def edges_and_cycles(self, declared):
        """Compute observed hold->acquire edges (transitive through the
        call graph) and return (edges, cycles) where cycles is a list of
        (cycle_nodes, offending_edges)."""
        # Transitive acquired-lock summaries, to fixpoint.
        summary = {name: {a[0] for a in scan.acquires}
                   for name, scan in self.functions.items()}
        changed = True
        while changed:
            changed = False
            for name, scan in self.functions.items():
                for keys, _held, _f, _l in scan.calls:
                    callee = self._resolve(keys)
                    if callee and not summary[name] >= summary[callee]:
                        summary[name] |= summary[callee]
                        changed = True

        edges = {}  # (A, B) -> witness "file:line (function)"
        for name, scan in self.functions.items():
            for lock, held, path, line in scan.acquires:
                for h in held:
                    if h != lock:
                        edges.setdefault(
                            (h, lock), f"{path}:{line} ({name})")
            for keys, held, path, line in scan.calls:
                callee = self._resolve(keys)
                if callee and held:
                    for b in summary[callee]:
                        for h in held:
                            if h != b:
                                edges.setdefault(
                                    (h, b),
                                    f"{path}:{line} ({name} -> {callee})")

        # Cycle detection over observed + declared edges.
        graph = {}
        for (a, b) in edges:
            graph.setdefault(a, set()).add(b)
            graph.setdefault(b, set())
        for (a, b) in declared:
            graph.setdefault(a, set()).add(b)
            graph.setdefault(b, set())

        cycles = []
        for scc in tarjan_sccs(graph):
            nodes = set(scc)
            in_cycle = len(scc) > 1 or (
                len(scc) == 1 and scc[0] in graph.get(scc[0], ()))
            if not in_cycle:
                continue
            scc_edges = [(a, b) for (a, b) in edges
                         if a in nodes and b in nodes]
            offending = [e for e in scc_edges if e not in declared]
            cycles.append((sorted(nodes), offending, scc_edges))
        return edges, cycles

    def _resolve(self, keys):
        for k in keys:
            if k in self.functions:
                return k
        return None


def tarjan_sccs(graph):
    index = {}
    low = {}
    on_stack = set()
    stack = []
    sccs = []
    counter = [0]

    def strongconnect(v):
        # Iterative Tarjan to survive deep graphs.
        work = [(v, iter(sorted(graph.get(v, ()))))]
        index[v] = low[v] = counter[0]
        counter[0] += 1
        stack.append(v)
        on_stack.add(v)
        while work:
            node, it = work[-1]
            advanced = False
            for w in it:
                if w not in index:
                    index[w] = low[w] = counter[0]
                    counter[0] += 1
                    stack.append(w)
                    on_stack.add(w)
                    work.append((w, iter(sorted(graph.get(w, ())))))
                    advanced = True
                    break
                elif w in on_stack:
                    low[node] = min(low[node], index[w])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index[node]:
                scc = []
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    scc.append(w)
                    if w == node:
                        break
                sccs.append(scc)

    for v in sorted(graph):
        if v not in index:
            strongconnect(v)
    return sccs


# ----------------------------------------------------------------------------
# Suppressions (mirrors softcell_lint.py grammar).
# ----------------------------------------------------------------------------

def load_file_suppressions(path):
    """-> dict[(checker, path, line)] = justification; exits 2 on garbage."""
    entries = {}
    if not os.path.exists(path):
        return entries
    with open(path, encoding="utf-8") as fh:
        for lineno, raw in enumerate(fh, 1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split(None, 2)
            if len(parts) < 3:
                print(f"{path}:{lineno}: malformed suppression "
                      f"(want '<checker> <path>:<line> <justification>')",
                      file=sys.stderr)
                sys.exit(2)
            checker, loc, justification = parts
            if checker not in CHECKERS:
                print(f"{path}:{lineno}: unknown checker '{checker}'",
                      file=sys.stderr)
                sys.exit(2)
            m = re.fullmatch(r"(.+):(\d+)", loc)
            if not m:
                print(f"{path}:{lineno}: bad location '{loc}'",
                      file=sys.stderr)
                sys.exit(2)
            entries[(checker, m.group(1), int(m.group(2)))] = justification
    return entries


def load_inline_suppressions(source_path):
    """-> dict[(checker, line)] = justification for one source file.
    A marker suppresses findings on its own line and the line below."""
    out = {}
    try:
        with open(source_path, encoding="utf-8", errors="replace") as fh:
            for lineno, raw in enumerate(fh, 1):
                m = SUPPRESS_INLINE_RE.search(raw)
                if m:
                    checker, justification = m.group(1), m.group(2).strip()
                    out[(checker, lineno)] = justification or "(none)"
    except OSError:
        pass
    return out


# ----------------------------------------------------------------------------
# Lock-order whitelist.
# ----------------------------------------------------------------------------

def load_lock_order(path):
    """Declared edges 'A -> B' meaning A may be held while acquiring B."""
    declared = set()
    if not os.path.exists(path):
        return declared
    with open(path, encoding="utf-8") as fh:
        for lineno, raw in enumerate(fh, 1):
            line = raw.split("#", 1)[0].strip()
            if not line:
                continue
            m = re.fullmatch(r"(\S+)\s*->\s*(\S+)", line)
            if not m:
                print(f"{path}:{lineno}: bad lock-order entry '{line}' "
                      "(want 'Owner::lock -> Owner::lock')", file=sys.stderr)
                sys.exit(2)
            declared.add((m.group(1), m.group(2)))
    return declared


# ----------------------------------------------------------------------------
# Clang invocation + AST-dump cache.
# ----------------------------------------------------------------------------

def clang_version(clang):
    try:
        out = subprocess.run([clang, "--version"], capture_output=True,
                             text=True, timeout=60)
    except (OSError, subprocess.TimeoutExpired):
        return None
    if out.returncode != 0:
        return None
    return out.stdout.splitlines()[0].strip() if out.stdout else "clang"


def probe_json_support(clang):
    """True when `clang++ -Xclang -ast-dump=json` emits JSON."""
    with tempfile.NamedTemporaryFile("w", suffix=".cpp", delete=False) as fh:
        fh.write("int softcell_probe() { return 0; }\n")
        probe = fh.name
    try:
        out = subprocess.run(
            [clang, "-x", "c++", "-std=c++20", "-fsyntax-only",
             "-Xclang", "-ast-dump=json", probe],
            capture_output=True, text=True, timeout=120)
    except (OSError, subprocess.TimeoutExpired):
        return False
    finally:
        os.unlink(probe)
    return out.returncode == 0 and out.stdout.lstrip().startswith("{")


def dump_ast(clang, source, args, cache_dir, ver, use_cache=True):
    """Return the parsed JSON AST for `source`, via the content-hash cache."""
    with open(source, "rb") as fh:
        content = fh.read()
    key = hashlib.sha256()
    key.update(ver.encode())
    key.update(b"\0".join(a.encode() for a in args))
    key.update(b"\0")
    key.update(content)
    digest = key.hexdigest()
    cache_path = os.path.join(cache_dir, f"{digest}.json.gz") if cache_dir else None

    if use_cache and cache_path and os.path.exists(cache_path):
        try:
            with gzip.open(cache_path, "rt", encoding="utf-8") as fh:
                return json.load(fh)
        except (OSError, json.JSONDecodeError):
            pass  # corrupt cache entry: fall through to a fresh dump

    cmd = [clang, "-x", "c++", "-fsyntax-only",
           "-Xclang", "-ast-dump=json"] + args + [source]
    out = subprocess.run(cmd, capture_output=True, text=True)
    if out.returncode != 0 or not out.stdout.lstrip().startswith("{"):
        print(f"softcell-analyze: error: clang failed on {source}:\n"
              f"{out.stderr}", file=sys.stderr)
        sys.exit(2)
    root = json.loads(out.stdout)
    if use_cache and cache_path:
        os.makedirs(cache_dir, exist_ok=True)
        tmp = cache_path + ".tmp"
        with gzip.open(tmp, "wt", encoding="utf-8") as fh:
            json.dump(root, fh)
        os.replace(tmp, cache_path)
    return root


# ----------------------------------------------------------------------------
# Driver.
# ----------------------------------------------------------------------------

class Analysis:
    def __init__(self):
        self.findings = []
        self.locks = LockOrderGraph()

    def add_function(self, scan: FunctionScan):
        self.locks.add(scan)


def relativize(path, root):
    try:
        rel = os.path.relpath(os.path.realpath(path), os.path.realpath(root))
    except ValueError:
        return path
    return path if rel.startswith("..") else rel


def main(argv=None):
    ap = argparse.ArgumentParser(
        prog="softcell-analyze",
        description="AST-grounded lifetime & lock-order checks for softcell")
    ap.add_argument("paths", nargs="*", help="sources or directories "
                    "(default: <root>/src)")
    ap.add_argument("--root", default=os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))))
    ap.add_argument("--clang", default=os.environ.get("SOFTCELL_CLANGXX",
                                                      "clang++"))
    ap.add_argument("--ast", action="append", default=[], metavar="SRC=DUMP",
                    help="use a precomputed JSON AST dump for SRC instead of "
                    "invoking clang (repeatable; used by the fixture tests)")
    ap.add_argument("--cache-dir", default=None,
                    help="AST dump cache (default <root>/build/analyze-cache)")
    ap.add_argument("--no-cache", action="store_true")
    ap.add_argument("--suppressions", default=None,
                    help="default <root>/tools/analyze_suppressions.txt")
    ap.add_argument("--lock-order", default=None,
                    help="default <root>/tools/lock_order.txt")
    ap.add_argument("--report", default=None, help="write a JSON report")
    ap.add_argument("--probe-only", action="store_true",
                    help="exit 0 if clang supports JSON AST dumps, else 3")
    ap.add_argument("--list-checkers", action="store_true")
    args = ap.parse_args(argv)

    if args.list_checkers:
        for c in CHECKERS:
            print(c)
        return 0

    root = os.path.abspath(args.root)
    suppress_file = args.suppressions or os.path.join(
        root, "tools", "analyze_suppressions.txt")
    lock_order_file = args.lock_order or os.path.join(
        root, "tools", "lock_order.txt")
    cache_dir = args.cache_dir or os.path.join(root, "build", "analyze-cache")

    ast_map = {}
    for pair in args.ast:
        if "=" not in pair:
            print(f"softcell-analyze: bad --ast '{pair}' (want SRC=DUMP)",
                  file=sys.stderr)
            return 2
        src, dump = pair.split("=", 1)
        ast_map[os.path.abspath(src)] = dump

    # Collect translation units.
    targets = []
    inputs = args.paths or ([os.path.join(root, "src")] if not ast_map else [])
    for p in inputs:
        ap_ = os.path.abspath(p)
        if os.path.isdir(ap_):
            for dirpath, _dirs, files in os.walk(ap_):
                for f in sorted(files):
                    if f.endswith(".cpp"):
                        targets.append(os.path.join(dirpath, f))
        elif os.path.isfile(ap_):
            targets.append(ap_)
        else:
            print(f"softcell-analyze: no such path: {p}", file=sys.stderr)
            return 2
    for src in ast_map:
        if src not in targets:
            targets.append(src)
    targets.sort()
    if not targets:
        print("softcell-analyze: nothing to analyze", file=sys.stderr)
        return 2

    need_clang = [t for t in targets if t not in ast_map]
    clang_args = ["-std=c++20", "-I", os.path.join(root, "src")]

    ver = None
    if need_clang or args.probe_only:
        ver = clang_version(args.clang)
        supported = ver is not None and probe_json_support(args.clang)
        if args.probe_only:
            return 0 if supported else 3
        if not supported:
            print("softcell-analyze: SKIP: clang++ with JSON AST support "
                  "not available (set SOFTCELL_CLANGXX to override)",
                  file=sys.stderr)
            return 3

    analysis = Analysis()
    asts = []
    for src in targets:
        if src in ast_map:
            try:
                with open(ast_map[src], encoding="utf-8") as fh:
                    root_node = json.load(fh)
            except (OSError, json.JSONDecodeError) as e:
                print(f"softcell-analyze: cannot read AST dump "
                      f"{ast_map[src]}: {e}", file=sys.stderr)
                return 2
        else:
            root_node = dump_ast(args.clang, src, clang_args, cache_dir, ver,
                                 use_cache=not args.no_cache)
        asts.append((src, Ast(root_node, default_file=src)))

    # Per-TU checkers.
    report_roots = [os.path.realpath(t) for t in targets]
    report_roots.append(os.path.realpath(os.path.join(root, "src")))

    def reportable(path):
        rp = os.path.realpath(path)
        return any(rp == r or rp.startswith(r + os.sep) for r in report_roots)

    for src, ast in asts:
        before = len(analysis.findings)
        check_rvalue_snapshot(ast, analysis.findings)
        scan_functions(ast, analysis)
        # Findings pointing outside the analyzed tree (system headers) are
        # dropped; carrying them would make runs environment-dependent.
        kept = [f for f in analysis.findings[before:] if reportable(f.path)]
        del analysis.findings[before:]
        analysis.findings.extend(kept)

    # Global lock-order pass.
    declared = load_lock_order(lock_order_file)
    edges, cycles = analysis.locks.edges_and_cycles(declared)
    for nodes, offending, scc_edges in cycles:
        if not offending:
            # Every observed edge in the cycle is declared: the ordering
            # is sanctioned (e.g. same-class instances locked in address
            # order), so the cycle is covered -- not a finding.
            continue
        a, b = offending[0]
        witness = edges.get((a, b), "?")
        wpath, _, wrest = witness.partition(":")
        wline = int(wrest.split()[0].split("(")[0]) if wrest and \
            wrest.split()[0].split("(")[0].isdigit() else 1
        analysis.findings.append(Finding(
            "lock-order-cycle", wpath, wline,
            f"lock acquisition cycle {' -> '.join(nodes + [nodes[0]])}; "
            f"edge {a} -> {b} (witness {witness}) is not declared in "
            f"{os.path.relpath(lock_order_file, root)} -- either fix the "
            "ordering or declare it (DESIGN.md §17.3)"))

    # Dedupe (headers analyzed in several TUs) and relativize.
    seen = set()
    unique = []
    for f in sorted(analysis.findings, key=lambda f: (f.path, f.line, f.checker)):
        f.path = relativize(f.path, root)
        if f.key() in seen:
            continue
        seen.add(f.key())
        unique.append(f)

    # Suppressions.  Inline markers are preloaded from EVERY analyzed
    # source (not just files with findings) so a marker left behind in a
    # now-clean file is still caught by the stale audit below.
    file_supp = load_file_suppressions(suppress_file)
    used_file_supp = set()
    inline_cache = {t: load_inline_suppressions(t) for t in targets}
    used_inline = {}  # path -> set of (checker, marker_line)
    active = []
    suppressed = []
    for f in unique:
        key = (f.checker, f.path, f.line)
        if key in file_supp:
            used_file_supp.add(key)
            suppressed.append(f)
            continue
        apath = os.path.join(root, f.path) if not os.path.isabs(f.path) else f.path
        if apath not in inline_cache:
            inline_cache[apath] = load_inline_suppressions(apath)
        inline = inline_cache[apath]
        marker = None
        if (f.checker, f.line) in inline:
            marker = (f.checker, f.line)
        elif (f.checker, f.line - 1) in inline:
            marker = (f.checker, f.line - 1)
        if marker:
            used_inline.setdefault(apath, set()).add(marker)
            suppressed.append(f)
            continue
        active.append(f)

    # Stale suppression audit (satellite: stale entries are hard failures).
    stale = []
    for key, justification in sorted(file_supp.items()):
        if key not in used_file_supp:
            stale.append(f"{os.path.relpath(suppress_file, root)}: stale "
                         f"suppression '{key[0]} {key[1]}:{key[2]}' matches "
                         "no diagnostic -- remove it")
    for apath, inline in sorted(inline_cache.items()):
        for (checker, line) in sorted(inline):
            if (checker, line) not in used_inline.get(apath, set()):
                stale.append(f"{relativize(apath, root)}:{line}: stale "
                             f"'sc-analyze: suppress({checker})' marker "
                             "matches no diagnostic -- remove it")
    # Inline markers in files that were never analyzed can't be audited;
    # only files we loaded are in inline_cache, so nothing extra to do.

    for f in active:
        print(f.render())
    for s in stale:
        print(f"stale-suppression: {s}")

    if args.report:
        payload = {
            "version": VERSION,
            "files_scanned": len(targets),
            "functions_scanned": analysis.locks.count(),
            "lock_edges": sorted(f"{a} -> {b}" for (a, b) in edges),
            "findings": [
                {"checker": f.checker, "path": f.path, "line": f.line,
                 "message": f.message} for f in active],
            "suppressed": [
                {"checker": f.checker, "path": f.path, "line": f.line}
                for f in suppressed],
            "stale_suppressions": stale,
        }
        with open(args.report, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")

    if active or stale:
        total = len(active)
        print(f"softcell-analyze: {total} finding(s), "
              f"{len(stale)} stale suppression(s)", file=sys.stderr)
        return 1
    print(f"softcell-analyze: clean ({len(targets)} file(s), "
          f"{analysis.locks.count()} function(s), "
          f"{len(edges)} lock edge(s))", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
