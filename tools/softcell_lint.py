#!/usr/bin/env python3
"""softcell-verify Part B: project-specific lint rules for the SoftCell tree.

Ten rules encode invariants the type system cannot see (DESIGN.md
section 12, "Static guarantees"):

  epoch-bump        Tag-class mutations in the dataplane switch table
                    (cls.by_prefix inserts/erases, cls.def writes) must be
                    paired with a note_tag() structural-epoch bump within a
                    few lines -- the Algorithm-1 fast path memoizes resolve
                    summaries keyed by that epoch, so a silent mutation
                    poisons the memo (stale scores, wrong tag choices).
                    Location-tier mutations (tier.by_prefix) carry no tag
                    and are exempt.

  naked-mutex       No std:: synchronization primitives outside
                    src/util/annotations.hpp.  Locks must go through the
                    sc:: capability-annotated wrappers so the Clang
                    -Wthread-safety build sees every acquisition.

  hotpath-blocking  Inside `// sc-lint: hotpath(name)` ...
                    `// sc-lint: endhotpath(name)` regions: no mutexes or
                    lock guards (sc:: or std::), no sleeps, no node-based
                    std::unordered_* declarations.  These regions are the
                    per-install scoring loops and the SPSC ring; a blocking
                    call there stalls every request on the shard.

  naked-rand        All randomness flows through util/rng.hpp (the
                    deterministic splitmix64 Rng).  rand(), srand(),
                    std::random_device and std::mt19937 anywhere else break
                    seed-replay determinism (the chaos harness's shrinking
                    and CI repro depend on it).

  iostream-write    Library code under src/ never writes to
                    stdout/stderr: harness and runtime results are returned
                    as values (RunReport, ostringstream), and worker
                    threads writing to iostreams interleave output and take
                    the global stream locks on the request path.

  metrics-direct    Perf-counter structs (AggPerf, FaultStats) may only be
                    mutated inside their owning file, marked with
                    `// sc-lint: metrics-owner(Struct)`.  Everyone else
                    reads them through accessors or the telemetry registry
                    (telemetry/registry.hpp collectors); a stray increment
                    elsewhere silently splits a metric across two homes and
                    the registry snapshot stops being the source of truth.

  controller-construct
                    Controller instances are owned by the composition roots
                    in src/sim/ (SoftCellNetwork) and src/cluster/
                    (ControllerFleet's replicas); constructing one anywhere
                    else (stack, new, make_unique/make_shared) bypasses the
                    fleet's partition-ownership leases -- two Controllers
                    over the same topology silently double-own every UE.
                    References, pointers and the Controller* derived types
                    (ShardedController, ControllerOptions, ControllerFleet)
                    stay free.

  cross-shard-direct
                    Core switch-table rows are mutated (engine install /
                    install_ue_shortcut / remove) only inside the file that
                    owns the commit stage, marked with
                    `// sc-lint: commit-owner(...)`.  Since the shard-brain
                    split (DESIGN.md section 16), every cross-shard install
                    is serialized through the CoreCommitter's single-writer
                    combiner; a direct engine mutation elsewhere slips rows
                    past that total order, so the published PathView
                    snapshots and the state fingerprint silently diverge
                    from the table.  Reads (lookup, stats, classifiers)
                    stay free.

  node-map-hotpath  Per-UE / per-flow resident state (maps keyed by UeId,
                    LocalUeId, FlowKey or PublicEndpoint) in the hot
                    directories (agent/, ctrl/, dataplane/, packet/) must
                    live in the slab layout (Slab/SlabMap/FlatMap), not in
                    node-based std::unordered_map / std::map -- at a
                    million resident UEs the per-node allocation overhead
                    dominates the footprint (DESIGN.md section 15).  The
                    files that deliberately keep the legacy layout behind
                    the SOFTCELL_SLAB=0 hatch carry a file-wide
                    `// sc-lint: slab-owner(...)` marker.

  raw-socket        Socket and epoll syscalls (::socket, ::send, ::recv,
                    ::epoll_*, ...) and their system headers live only
                    under src/net/ -- the one transport layer whose
                    partial-read / short-write / backpressure handling is
                    tested over real loopback sockets (DESIGN.md
                    section 18).  A stray syscall elsewhere bypasses the
                    EventLoop's fd-token lifecycle and the NetStats
                    accounting, and its error paths are never exercised.

Usage:
  python3 tools/softcell_lint.py [--root DIR] [--report FILE]
                                 [--suppressions FILE] [--list-rules]
                                 [paths...]

Paths default to src/ under --root (default: repo root, parent of tools/).
Suppressions live in tools/lint_suppressions.txt, one per line:

  <rule> <path>:<line> <justification -- mandatory>

Exit status: 0 = clean (all findings suppressed or none), 1 = findings,
2 = bad invocation or malformed suppression file.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path

# --- comment / string stripping ---------------------------------------------
# Token rules must not fire on prose ("the mutex is not needed here") or on
# string literals.  The stripper blanks them out, preserving line numbers
# and column positions so findings still point at the real source location.

_STRIP_RE = re.compile(
    r"""
      //[^\n]*                 # line comment
    | /\*.*?\*/                # block comment
    | "(?:\\.|[^"\\\n])*"      # string literal
    | '(?:\\.|[^'\\\n])*'      # char literal
    """,
    re.VERBOSE | re.DOTALL,
)


def strip_comments(text: str) -> str:
    def blank(m: re.Match) -> str:
        return "".join(c if c == "\n" else " " for c in m.group(0))

    return _STRIP_RE.sub(blank, text)


# --- findings ----------------------------------------------------------------


class Finding:
    def __init__(self, rule: str, path: str, line: int, message: str,
                 snippet: str):
        self.rule = rule
        self.path = path
        self.line = line
        self.message = message
        self.snippet = snippet.strip()

    def key(self) -> tuple:
        return (self.rule, self.path, self.line)

    def to_json(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "snippet": self.snippet,
        }

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


# --- rule: epoch-bump --------------------------------------------------------
# Receiver spelling is deliberate: the switch-table code names the tag class
# `cls` and the location tier `tier`; only the former carries a tag epoch.

_EPOCH_MUTATION = re.compile(
    r"\bcls(?:->|\.)by_prefix\.(?:emplace|erase|insert|clear)\s*\("
    r"|\bcls(?:->|\.)def\s*=[^=]"
    r"|\.def\.reset\s*\("
    r"|\.def\.emplace\s*\("
)
_NOTE_TAG = re.compile(r"\bnote_tag\s*\(")
_EPOCH_WINDOW = 6  # lines on each side a note_tag() may sit


def check_epoch_bump(path: str, lines: list[str]) -> list[Finding]:
    if "dataplane" not in path:
        return []
    out = []
    has_note = [bool(_NOTE_TAG.search(l)) for l in lines]
    for i, line in enumerate(lines):
        if not _EPOCH_MUTATION.search(line):
            continue
        lo = max(0, i - _EPOCH_WINDOW)
        hi = min(len(lines), i + _EPOCH_WINDOW + 1)
        if not any(has_note[lo:hi]):
            out.append(Finding(
                "epoch-bump", path, i + 1,
                "tag-class mutation without a note_tag() epoch bump within "
                f"{_EPOCH_WINDOW} lines; the fast-path memo keys on that "
                "epoch", line))
    return out


# --- rule: naked-mutex -------------------------------------------------------

_NAKED_MUTEX = re.compile(
    r"\bstd::(?:mutex|shared_mutex|timed_mutex|recursive_mutex"
    r"|condition_variable(?:_any)?|lock_guard|unique_lock|shared_lock"
    r"|scoped_lock)\b"
)


def check_naked_mutex(path: str, lines: list[str]) -> list[Finding]:
    if path.endswith("util/annotations.hpp"):
        return []  # the one place allowed to touch the std primitives
    out = []
    for i, line in enumerate(lines):
        m = _NAKED_MUTEX.search(line)
        if m:
            out.append(Finding(
                "naked-mutex", path, i + 1,
                f"{m.group(0)} outside the sc:: capability wrappers "
                "(util/annotations.hpp); thread-safety analysis cannot see "
                "this lock", line))
    return out


# --- rule: hotpath-blocking --------------------------------------------------

_HOTPATH_BEGIN = re.compile(r"sc-lint:\s*hotpath\(([A-Za-z0-9_-]+)\)")
_HOTPATH_END = re.compile(r"sc-lint:\s*endhotpath\(([A-Za-z0-9_-]+)\)")
_BLOCKING = re.compile(
    r"\bstd::(?:mutex|shared_mutex|condition_variable(?:_any)?|lock_guard"
    r"|unique_lock|shared_lock|scoped_lock|unordered_map|unordered_set"
    r"|unordered_multimap|unordered_multiset)\b"
    r"|\bsc::(?:Mutex|SharedMutex|LockGuard|UniqueLock|WriteLock|ReadLock"
    r"|CondVar)\b"
    r"|\bsleep_for\s*\(|\bsleep_until\s*\(|\busleep\s*\(|\bsleep\s*\("
)


def check_hotpath(path: str, raw_lines: list[str],
                  stripped: list[str]) -> list[Finding]:
    # Region markers live in comments, so they are parsed from the raw
    # text; the blocking-token scan runs on the stripped text.
    out = []
    open_regions: dict[str, int] = {}
    for i, raw in enumerate(raw_lines):
        begin = _HOTPATH_BEGIN.search(raw)
        end = _HOTPATH_END.search(raw)
        if begin and not end:
            name = begin.group(1)
            if name in open_regions:
                out.append(Finding(
                    "hotpath-blocking", path, i + 1,
                    f"hotpath region '{name}' opened twice (unterminated at "
                    f"line {open_regions[name] + 1}?)", raw))
            open_regions[name] = i
            continue
        if end:
            name = end.group(1)
            if name not in open_regions:
                out.append(Finding(
                    "hotpath-blocking", path, i + 1,
                    f"endhotpath('{name}') with no matching open", raw))
            open_regions.pop(name, None)
            continue
        if open_regions:
            m = _BLOCKING.search(stripped[i])
            if m:
                names = ", ".join(sorted(open_regions))
                out.append(Finding(
                    "hotpath-blocking", path, i + 1,
                    f"{m.group(0).strip()} inside hotpath region "
                    f"[{names}]; hot regions must stay lock-free, "
                    "sleep-free and node-allocation-free", raw))
    for name, line in open_regions.items():
        out.append(Finding(
            "hotpath-blocking", path, line + 1,
            f"hotpath region '{name}' never closed "
            "(missing sc-lint: endhotpath)", raw_lines[line]))
    return out


# --- rule: naked-rand --------------------------------------------------------

_NAKED_RAND = re.compile(
    r"\bstd::random_device\b|\bstd::mt19937(?:_64)?\b"
    r"|(?<![\w:.>])s?rand\s*\("
)


def check_naked_rand(path: str, lines: list[str]) -> list[Finding]:
    if path.endswith("util/rng.hpp"):
        return []  # the deterministic Rng implementation itself
    out = []
    for i, line in enumerate(lines):
        m = _NAKED_RAND.search(line)
        if m:
            out.append(Finding(
                "naked-rand", path, i + 1,
                f"{m.group(0).strip()} outside util/rng.hpp breaks "
                "seed-replay determinism (chaos shrinking, CI repro)", line))
    return out


# --- rule: iostream-write ----------------------------------------------------

_IOSTREAM = re.compile(
    r"\bstd::(?:cout|cerr|clog)\b|(?<![\w:.>])f?printf\s*\(|\bputs\s*\("
)


def check_iostream(path: str, lines: list[str]) -> list[Finding]:
    out = []
    for i, line in enumerate(lines):
        m = _IOSTREAM.search(line)
        if m:
            out.append(Finding(
                "iostream-write", path, i + 1,
                f"{m.group(0).strip()} in library code; return values "
                "(RunReport, ostringstream) instead -- worker threads must "
                "not write to process-global streams", line))
    return out


# --- rule: metrics-direct ----------------------------------------------------
# The owning file carries a `// sc-lint: metrics-owner(Struct)` marker (in a
# comment, so it is parsed from the raw text); everywhere else, writes to
# the known counter-struct receivers are findings.  Reads stay free.

_METRICS_OWNER = re.compile(r"sc-lint:\s*metrics-owner\([A-Za-z0-9_]+\)")
_METRICS_RECV = r"(?:perf_|fault_stats_)"
_METRICS_DIRECT = re.compile(
    r"(?:\+\+|--)\s*" + _METRICS_RECV + r"\.\w+"          # ++perf_.x
    r"|\b" + _METRICS_RECV + r"\.\w+\s*"                   # perf_.x++ / x += /
    r"(?:\+\+|--|(?:[+\-*/%|&^]|<<|>>)?=(?!=))"            # x = (not ==)
    r"|\b" + _METRICS_RECV + r"\s*=(?!=)"                  # whole-struct reset
)


def _marker_line(marker_re: re.Pattern, raw_lines: list[str]) -> int | None:
    """1-based line of the first file-wide owner marker, or None."""
    for i, raw in enumerate(raw_lines):
        if marker_re.search(raw):
            return i + 1
    return None


def _audit_owner_marker(rule: str, marker: str, path: str, line: int,
                        would_fire: list[Finding]) -> list[Finding]:
    """A file-wide owner marker that exempts nothing is stale: the code it
    justified has moved, and a stale exemption silently disables the rule
    for whatever lands in the file next (the sc-analyze stale-suppression
    audit, applied to sc-lint's markers)."""
    if would_fire:
        return []  # marker is load-bearing
    return [Finding(
        rule, path, line,
        f"stale sc-lint marker: '{marker}' exempts no {rule} diagnostics "
        "in this file -- remove the marker", "")]


def check_metrics_direct(path: str, raw_lines: list[str],
                         stripped: list[str]) -> list[Finding]:
    out = []
    for i, line in enumerate(stripped):
        m = _METRICS_DIRECT.search(line)
        if m:
            out.append(Finding(
                "metrics-direct", path, i + 1,
                f"{m.group(0).strip()}: perf-counter structs are mutated "
                "only in their sc-lint: metrics-owner(...) file; read them "
                "via accessors or telemetry registry collectors", line))
    marker = _marker_line(_METRICS_OWNER, raw_lines)
    if marker is not None:
        return _audit_owner_marker("metrics-direct", "metrics-owner", path,
                                   marker, out)
    return out


# --- rule: controller-construct ----------------------------------------------
# The composition roots allowed to own Controller instances are identified
# by path segment: src/sim/ (SoftCellNetwork wires a standalone controller
# or hands the topology to a fleet) and src/cluster/ (ControllerFleet builds
# its replicas).  Everyone else must accept a ControlPlane& / Controller&.
#
# Three construction spellings, each anchored so the Controller-prefixed and
# Controller-suffixed types (ControllerFleet, ControllerOptions,
# ShardedController) and mere references (Controller&, Controller*) never
# match:
#   * heap:   new Controller(...)            / new Controller{...}
#   * smart:  make_unique<Controller>(...)   / make_shared<Controller>(...)
#   * stack:  Controller name(...)           / Controller name{...}

_CTRL_CONSTRUCT = re.compile(
    r"\bnew\s+(?:\w+::)*Controller\s*[({]"
    r"|\bmake_(?:unique|shared)\s*<\s*(?:\w+::)*Controller\s*>"
    r"|(?<![\w:])Controller\s+\w+\s*[({]"
)
_CTRL_ALLOWED_DIRS = {"sim", "cluster"}


def check_controller_construct(path: str, lines: list[str]) -> list[Finding]:
    if _CTRL_ALLOWED_DIRS & set(Path(path).parts):
        return []  # the composition roots that own Controller lifetimes
    out = []
    for i, line in enumerate(lines):
        m = _CTRL_CONSTRUCT.search(line)
        if m:
            out.append(Finding(
                "controller-construct", path, i + 1,
                f"{m.group(0).strip()}: Controller is constructed only by "
                "the sim/ and cluster/ composition roots; a stray instance "
                "bypasses the fleet's partition-ownership leases", line))
    return out


# --- rule: cross-shard-direct ------------------------------------------------
# The commit-stage owner file is identified by a file-wide
# `// sc-lint: commit-owner(...)` marker (a comment, parsed from the raw
# text -- the metrics-owner exemption shape).  Everywhere else, calls that
# mutate switch-table rows through an engine receiver are findings.  The
# receiver spellings are the codebase's three: the `engine_` member, a bare
# `engine` local/parameter, and the `engine()` accessor (any qualifier,
# `.` or `->`).  `remove_listener`, `install`-prefixed identifiers that are
# not calls, and read-only calls (lookup, stats, classifiers) never match.

_COMMIT_OWNER = re.compile(r"sc-lint:\s*commit-owner\([^)]*\)")
_CROSS_SHARD_DIRECT = re.compile(
    r"\bengine_?(?:\s*\(\s*\))?\s*(?:\.|->)\s*"
    r"(?:install(?:_ue_shortcut)?|remove)\s*\("
)


def check_cross_shard_direct(path: str, raw_lines: list[str],
                             stripped: list[str]) -> list[Finding]:
    out = []
    for i, line in enumerate(stripped):
        m = _CROSS_SHARD_DIRECT.search(line)
        if m:
            out.append(Finding(
                "cross-shard-direct", path, i + 1,
                f"{m.group(0).strip()}: switch-table rows are mutated only "
                "in the sc-lint: commit-owner(...) file; a direct engine "
                "install/remove bypasses the commit stage's single-writer "
                "total order and desyncs the published PathView snapshots",
                line))
    marker = _marker_line(_COMMIT_OWNER, raw_lines)
    if marker is not None:
        return _audit_owner_marker("cross-shard-direct", "commit-owner",
                                   path, marker, out)
    return out


# --- rule: node-map-hotpath --------------------------------------------------
# The slab migration (DESIGN.md section 15) moved per-UE / per-flow resident
# state out of node-based maps; this rule keeps it out.  Scope is the hot
# directories by path segment (mirroring epoch-bump's substring convention so
# the fixture can carry the segment in its file name).  Files that own the
# legacy SOFTCELL_SLAB=0 layout declare it with a file-wide
# `// sc-lint: slab-owner(...)` marker (a comment, parsed from raw text),
# exactly the metrics-owner exemption shape.

_SLAB_OWNER = re.compile(r"sc-lint:\s*slab-owner\([^)]*\)")
_NODE_MAP_HOTPATH = re.compile(
    r"\bstd::(?:unordered_(?:multi)?map|multimap|map)\s*<\s*"
    r"(?:\w+::)*(?:LocalUeId|UeId|FlowKey|PublicEndpoint)\s*[,>]"
)
_NODE_MAP_DIRS = ("agent", "ctrl", "dataplane", "packet")


def check_node_map_hotpath(path: str, raw_lines: list[str],
                           stripped: list[str]) -> list[Finding]:
    if not any(d in path for d in _NODE_MAP_DIRS):
        return []
    out = []
    for i, line in enumerate(stripped):
        m = _NODE_MAP_HOTPATH.search(line)
        if m:
            out.append(Finding(
                "node-map-hotpath", path, i + 1,
                f"{m.group(0).strip()}: per-UE/per-flow resident state in "
                "hot directories uses the slab layout (Slab/SlabMap/"
                "FlatMap); node maps live only in sc-lint: slab-owner(...) "
                "files behind the SOFTCELL_SLAB=0 hatch", line))
    marker = _marker_line(_SLAB_OWNER, raw_lines)
    if marker is not None:
        return _audit_owner_marker("node-map-hotpath", "slab-owner", path,
                                   marker, out)
    return out


# --- rule: raw-socket --------------------------------------------------------
# Scope is a `net` path segment (src/net/ in the tree; the fixture carries
# the segment in its own path the way epoch-bump's fixture does).  Two
# spellings are findings everywhere else:
#   * global-scope socket/epoll syscalls: the `::` anchor keeps qualified
#     names (asio::connect, Channel::send) and members free;
#   * the socket system headers themselves -- including one is the earliest
#     tell that transport code is growing outside the transport layer.

_RAW_SOCKET_CALL = re.compile(
    r"(?<![\w>])::(?:socket|socketpair|accept4?|bind|listen|connect"
    r"|send(?:to|msg)?|recv(?:from|msg)?|shutdown|getsockname|getpeername"
    r"|setsockopt|getsockopt|epoll_(?:create1?|ctl|wait|pwait)|eventfd)"
    r"\s*\("
)
_RAW_SOCKET_HEADER = re.compile(
    r'#\s*include\s*[<"](?:sys/socket\.h|sys/epoll\.h|sys/eventfd\.h'
    r'|sys/un\.h|netinet/[^>"]+|arpa/inet\.h)[>"]'
)


def check_raw_socket(path: str, lines: list[str]) -> list[Finding]:
    if "net" in Path(path).parts:
        return []  # the transport layer owns the syscall surface
    out = []
    for i, line in enumerate(lines):
        m = _RAW_SOCKET_HEADER.search(line) or _RAW_SOCKET_CALL.search(line)
        if m:
            out.append(Finding(
                "raw-socket", path, i + 1,
                f"{m.group(0).strip()}: socket/epoll syscalls and headers "
                "live only under src/net/; transport code elsewhere "
                "bypasses the EventLoop fd lifecycle and NetStats "
                "accounting", line))
    return out


RULES = {
    "epoch-bump": "tag-class mutations must bump the structural epoch",
    "naked-mutex": "std:: sync primitives only inside util/annotations.hpp",
    "hotpath-blocking": "no locks/sleeps/unordered_* in hotpath regions",
    "naked-rand": "all randomness through util/rng.hpp",
    "iostream-write": "no stdout/stderr writes from library code",
    "metrics-direct": "perf-counter structs mutated only in their owner file",
    "controller-construct":
        "Controller built only by the sim/ and cluster/ composition roots",
    "cross-shard-direct":
        "engine rows mutated only by the commit-owner file",
    "node-map-hotpath":
        "per-UE/per-flow state in hot dirs uses slabs, not node maps",
    "raw-socket":
        "socket/epoll syscalls and headers only under src/net/",
}


def scan_file(root: Path, file: Path) -> list[Finding]:
    rel = file.relative_to(root).as_posix()
    raw = file.read_text(encoding="utf-8", errors="replace")
    raw_lines = raw.splitlines()
    stripped_lines = strip_comments(raw).splitlines()
    # splitlines() on the stripped text can only differ if the file ends
    # mid-comment; pad defensively.
    while len(stripped_lines) < len(raw_lines):
        stripped_lines.append("")
    findings = []
    findings += check_epoch_bump(rel, stripped_lines)
    findings += check_naked_mutex(rel, stripped_lines)
    findings += check_hotpath(rel, raw_lines, stripped_lines)
    findings += check_naked_rand(rel, stripped_lines)
    findings += check_iostream(rel, stripped_lines)
    findings += check_metrics_direct(rel, raw_lines, stripped_lines)
    findings += check_controller_construct(rel, stripped_lines)
    findings += check_cross_shard_direct(rel, raw_lines, stripped_lines)
    findings += check_node_map_hotpath(rel, raw_lines, stripped_lines)
    findings += check_raw_socket(rel, stripped_lines)
    return findings


# --- suppressions ------------------------------------------------------------

_SUPPRESSION_RE = re.compile(
    r"^(?P<rule>[a-z-]+)\s+(?P<path>\S+):(?P<line>\d+)\s+(?P<why>\S.*)$")


def load_suppressions(path: Path) -> dict[tuple, str]:
    table: dict[tuple, str] = {}
    if not path.exists():
        return table
    for lineno, line in enumerate(path.read_text().splitlines(), 1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        m = _SUPPRESSION_RE.match(line)
        if not m:
            print(f"{path}:{lineno}: malformed suppression (want "
                  f"'<rule> <path>:<line> <justification>'): {line}",
                  file=sys.stderr)
            sys.exit(2)
        if m.group("rule") not in RULES:
            print(f"{path}:{lineno}: unknown rule '{m.group('rule')}'",
                  file=sys.stderr)
            sys.exit(2)
        key = (m.group("rule"), m.group("path"), int(m.group("line")))
        table[key] = m.group("why")
    return table


# --- driver ------------------------------------------------------------------


def collect_files(paths: list[Path]) -> list[Path]:
    out = []
    for p in paths:
        if p.is_dir():
            out.extend(sorted(p.rglob("*.hpp")))
            out.extend(sorted(p.rglob("*.cpp")))
        elif p.suffix in (".hpp", ".cpp"):
            out.append(p)
    return sorted(set(out))


def main(argv: list[str]) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("paths", nargs="*", help="files or directories to lint")
    ap.add_argument("--root", type=Path,
                    default=Path(__file__).resolve().parent.parent,
                    help="repo root findings are reported relative to")
    ap.add_argument("--suppressions", type=Path, default=None,
                    help="suppression file "
                         "(default: tools/lint_suppressions.txt)")
    ap.add_argument("--report", type=Path, default=None,
                    help="write machine-readable JSON findings here")
    ap.add_argument("--list-rules", action="store_true")
    args = ap.parse_args(argv)

    if args.list_rules:
        for rule, desc in RULES.items():
            print(f"{rule:18s} {desc}")
        return 0

    root = args.root.resolve()
    targets = ([Path(p).resolve() for p in args.paths] if args.paths
               else [root / "src"])
    files = collect_files(targets)
    if not files:
        print("softcell-lint: no .hpp/.cpp files found", file=sys.stderr)
        return 2

    sup_path = args.suppressions or root / "tools" / "lint_suppressions.txt"
    suppressions = load_suppressions(sup_path)

    findings: list[Finding] = []
    for f in files:
        try:
            rel_root = root if f.is_relative_to(root) else f.parent
        except AttributeError:  # pragma: no cover (py<3.9)
            rel_root = root
        findings.extend(scan_file(rel_root, f))

    active, suppressed = [], []
    used_suppressions = set()
    for finding in findings:
        if finding.key() in suppressions:
            suppressed.append(finding)
            used_suppressions.add(finding.key())
        else:
            active.append(finding)

    for finding in active:
        print(finding)

    # Stale-suppression audit: an unused entry whose target file WAS
    # scanned matches no diagnostic, so the code it justified has moved --
    # hard failure (prune the entry).  Entries pointing at files outside
    # this run's scope are left alone so single-file invocations don't
    # false-fail on the rest of the table.
    scanned_rels = set()
    for f in files:
        try:
            rel_root = root if f.is_relative_to(root) else f.parent
        except AttributeError:  # pragma: no cover (py<3.9)
            rel_root = root
        scanned_rels.add(f.relative_to(rel_root).as_posix())
    stale = [key for key in sorted(set(suppressions) - used_suppressions)
             if key[1] in scanned_rels]
    for key in stale:
        print(f"stale-suppression: {sup_path}: '{key[0]} {key[1]}:{key[2]}' "
              "matches no diagnostic -- remove it")

    if args.report:
        report = {
            "version": 2,
            "files_scanned": len(files),
            "findings": [f.to_json() for f in active],
            "suppressed": [
                dict(f.to_json(), justification=suppressions[f.key()])
                for f in suppressed
            ],
            "stale_suppressions": [
                {"rule": k[0], "path": k[1], "line": k[2]} for k in stale
            ],
        }
        args.report.parent.mkdir(parents=True, exist_ok=True)
        args.report.write_text(json.dumps(report, indent=2) + "\n")

    if active or stale:
        print(f"softcell-lint: {len(active)} finding(s), "
              f"{len(stale)} stale suppression(s) "
              f"({len(suppressed)} suppressed) in {len(files)} files",
              file=sys.stderr)
        return 1
    print(f"softcell-lint: clean ({len(files)} files, "
          f"{len(suppressed)} suppressed)", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
